// Universal-histogram estimators (Section 4, Figure 6).
//
// Three strategies answer arbitrary range counts under epsilon-DP:
//
//   LTilde : noisy unit counts, ranges answered by summation. Accurate for
//            tiny ranges, error grows linearly with range length.
//   HTilde : noisy hierarchical counts, ranges answered by summing the
//            minimal subtree decomposition. Poly-log error everywhere.
//   HBar   : HTilde's draw post-processed with Theorem 3's constrained
//            inference (plus the Section 4.2 non-negativity pruning);
//            consistent, so ranges are exact sums of inferred leaves.
//
// Each estimator draws its noise once at construction — one construction
// equals one interaction with the private data — and then answers any
// number of ranges as pure post-processing. Following Section 5.2, all
// estimators round to non-negative integers (configurable).

#ifndef DPHIST_ESTIMATORS_UNIVERSAL_H_
#define DPHIST_ESTIMATORS_UNIVERSAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"
#include "tree/tree_layout.h"

namespace dphist {

/// Shared knobs for the universal-histogram estimators.
struct UniversalOptions {
  /// Privacy parameter; the whole construction is epsilon-DP.
  double epsilon = 1.0;
  /// Tree branching factor for HTilde/HBar.
  std::int64_t branching = 2;
  /// Enforce integrality and non-negativity (Section 5.2 protocol). For
  /// L~ and H~ the *final range answer* is rounded to the nearest
  /// non-negative integer; rounding every unit count instead would
  /// accumulate a positive clipping bias linear in the range length over
  /// sparse regions (and does not match the paper's reported L~ error,
  /// which follows the pure-noise 2R/eps^2 line). For H-bar, rounding is
  /// applied to the inferred node estimates as part of the Section 4.2
  /// post-processing, as the paper specifies.
  bool round_to_nonnegative_integers = true;
  /// Zero out non-positive subtrees after inference (Section 4.2; HBar
  /// only).
  bool prune_nonpositive_subtrees = true;
};

/// The L~ strategy: unit counts + Laplace(1/epsilon) noise.
class LTildeEstimator : public RangeCountEstimator {
 public:
  LTildeEstimator(const Histogram& data, const UniversalOptions& options,
                  Rng* rng);

  /// Validating construction for serving paths: invalid options or a
  /// missing RNG become a Status instead of aborting the process. The
  /// plain constructor keeps its CHECKs for the experiment binaries.
  static Result<std::unique_ptr<LTildeEstimator>> Create(
      const Histogram& data, const UniversalOptions& options, Rng* rng);

  /// Rebuilds the estimator from a persisted leaf vector (the
  /// SerializableState of a previous construction): the prefix table is
  /// recomputed by the same deterministic fold, so every answer is
  /// bit-identical to the original's. Fails on an empty vector.
  static Result<std::unique_ptr<LTildeEstimator>> Restore(
      const UniversalOptions& options, std::vector<double> leaves);

  double RangeCount(const Interval& range) const override;
  void RangeCountsInto(const Interval* ranges, std::size_t count,
                       double* out) const override;
  std::string Name() const override { return "L~"; }

  /// Every range is one prefix difference (plus optional rounding).
  double RangeCostHint(const Interval& range) const override {
    (void)range;
    return 1.0;
  }

  /// L~ is always prefix-served; the final answer is rounded exactly
  /// when Section 5.2 rounding is on.
  PrefixAnswerView PrefixView() const override {
    return {prefix_.data(), static_cast<std::int64_t>(leaves_.size()),
            round_answers_};
  }

  /// Raw noisy per-position answers (rounding happens per range answer).
  const std::vector<double>& leaf_estimates() const { return leaves_; }

  /// The leaves: everything Restore needs (see range_engine.h).
  const std::vector<double>* SerializableState() const override {
    return &leaves_;
  }

 private:
  LTildeEstimator(const UniversalOptions& options,
                  std::vector<double> leaves);

  bool round_answers_;
  std::vector<double> leaves_;
  std::vector<double> prefix_;
};

/// The H~ strategy: hierarchical counts + Laplace(height/epsilon) noise,
/// ranges answered by the minimal subtree decomposition.
class HTildeEstimator : public RangeCountEstimator {
 public:
  HTildeEstimator(const Histogram& data, const UniversalOptions& options,
                  Rng* rng);

  /// Validating construction for serving paths (see LTilde::Create);
  /// additionally rejects branching < 2.
  static Result<std::unique_ptr<HTildeEstimator>> Create(
      const Histogram& data, const UniversalOptions& options, Rng* rng);

  /// Builds from an existing noisy node vector (so experiments can feed
  /// H~ and H-bar the *same* draw).
  HTildeEstimator(std::int64_t domain_size, const UniversalOptions& options,
                  std::vector<double> noisy_nodes);

  /// Validating form of the noisy-node constructor for the storage
  /// layer: a persisted node vector that does not match the tree of
  /// (domain_size, branching) is a Status, not an abort.
  static Result<std::unique_ptr<HTildeEstimator>> Restore(
      std::int64_t domain_size, const UniversalOptions& options,
      std::vector<double> noisy_nodes);

  double RangeCount(const Interval& range) const override;
  void RangeCountsInto(const Interval* ranges, std::size_t count,
                       double* out) const override;
  std::string Name() const override { return "H~"; }

  /// Every answer walks the minimal subtree decomposition — worth
  /// caching (proportional to tree height, never O(1)).
  double RangeCostHint(const Interval& range) const override {
    (void)range;
    return static_cast<double>(tree_.height());
  }

  /// Tree geometry (shared with HBar when comparing like-for-like).
  const TreeLayout& tree() const { return tree_; }

  /// Raw noisy per-node answers (rounding happens per range answer).
  const std::vector<double>& node_answers() const { return nodes_; }

  /// The raw noisy nodes: everything Restore needs.
  const std::vector<double>* SerializableState() const override {
    return &nodes_;
  }

 private:
  /// Non-virtual core shared by the scalar and batched entry points so
  /// the batched loop pays no per-query virtual dispatch.
  double RangeCountImpl(const Interval& range) const;

  bool round_answers_;
  std::int64_t domain_size_;
  TreeLayout tree_;
  std::vector<double> nodes_;
};

/// The H-bar strategy: H~'s draw + Theorem 3 inference (+ pruning).
///
/// Range queries are answered from the minimal subtree decomposition of
/// the post-processed node estimates. When pruning and rounding are off
/// this equals summing inferred leaves (the tree is exactly consistent);
/// with them on, decomposition keeps the non-negativity clipping at the
/// subtree level — clipping at the leaf level instead would add a
/// positive bias proportional to the range length across sparse regions.
///
/// Performance: construction detects whether the final node estimates are
/// exactly consistent (they are whenever pruning and rounding leave the
/// inference output untouched). If so, every decomposition answer equals
/// a difference of two leaf prefix sums, so RangeCount runs in O(1);
/// otherwise it falls back to the allocation-free O(k log_k n)
/// decomposition walk. Both paths allocate nothing per query.
class HBarEstimator : public RangeCountEstimator {
 public:
  HBarEstimator(const Histogram& data, const UniversalOptions& options,
                Rng* rng);

  /// Validating construction for serving paths (see LTilde::Create);
  /// additionally rejects branching < 2.
  static Result<std::unique_ptr<HBarEstimator>> Create(
      const Histogram& data, const UniversalOptions& options, Rng* rng);

  /// Builds from an existing noisy node vector (so experiments can feed
  /// H~ and H-bar the *same* draw). `noisy_nodes` must match the tree of
  /// `HierarchicalQuery(domain_size, options.branching)`.
  HBarEstimator(std::int64_t domain_size, const UniversalOptions& options,
                const std::vector<double>& noisy_nodes);

  /// Rebuilds the estimator from persisted *final* node estimates (the
  /// output of inference + pruning + rounding, i.e. node_estimates()):
  /// the expensive inference is skipped, while the leaf extraction,
  /// prefix table, and consistency detection re-run the same
  /// deterministic code the original construction did — so answers and
  /// the fast-path choice are bit-identical. Fails when the vector does
  /// not match the tree of (domain_size, branching).
  static Result<std::unique_ptr<HBarEstimator>> Restore(
      std::int64_t domain_size, const UniversalOptions& options,
      std::vector<double> final_nodes);

  double RangeCount(const Interval& range) const override;
  void RangeCountsInto(const Interval* ranges, std::size_t count,
                       double* out) const override;
  std::string Name() const override { return "H-bar"; }

  /// The answer computed by walking the minimal subtree decomposition —
  /// the reference path the O(1) prefix-sum fast path must agree with.
  /// Exposed for equivalence tests and benchmarks.
  double RangeCountViaDecomposition(const Interval& range) const;

  /// True when construction proved the node estimates exactly consistent,
  /// enabling the O(1) prefix-sum answer path.
  bool uses_prefix_fast_path() const { return consistent_; }

  /// One prefix difference on the consistent fast path; otherwise a
  /// decomposition walk proportional to the tree height.
  double RangeCostHint(const Interval& range) const override {
    (void)range;
    return consistent_ ? 1.0 : static_cast<double>(tree_.height());
  }

  /// Only the consistent fast path is a raw prefix difference; the
  /// final answer is never rounded (rounding was applied to the node
  /// estimates during inference). Inconsistent trees must keep the
  /// decomposition walk, so they expose no view.
  PrefixAnswerView PrefixView() const override {
    if (!consistent_) return {};
    return {prefix_.data(), domain_size_, /*round_final_answer=*/false};
  }

  const TreeLayout& tree() const { return tree_; }

  /// Final per-node estimates (inference, then pruning and rounding as
  /// configured). Exactly consistent (parent = sum of children) when
  /// pruning and rounding are disabled.
  const std::vector<double>& node_estimates() const { return nodes_; }

  /// Final per-position estimates: the leaf level of node_estimates().
  const std::vector<double>& leaf_estimates() const { return leaves_; }

  /// The final node estimates: everything Restore needs.
  const std::vector<double>* SerializableState() const override {
    return &nodes_;
  }

 private:
  /// Restore path: adopts final nodes without re-running inference.
  struct RestoreTag {};
  HBarEstimator(RestoreTag, std::int64_t domain_size,
                std::vector<double> final_nodes, std::int64_t branching);

  void FinishConstruction(const UniversalOptions& options,
                          const std::vector<double>& noisy_nodes);

  /// The deterministic tail of construction shared with Restore:
  /// computes leaves_, prefix_, and consistent_ from nodes_.
  void ComputeLeafState();

  /// Non-virtual decomposition walk shared by the fallback paths and
  /// RangeCountViaDecomposition.
  double DecompositionAnswer(const Interval& range) const;

  std::int64_t domain_size_;
  TreeLayout tree_;
  std::vector<double> nodes_;
  std::vector<double> leaves_;
  /// prefix_[i] = sum of leaves_[0..i); drives the O(1) answer path.
  std::vector<double> prefix_;
  bool consistent_ = false;
};

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_UNIVERSAL_H_
