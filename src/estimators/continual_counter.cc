#include "estimators/continual_counter.h"

#include "common/check.h"
#include "common/laplace.h"

namespace dphist {

ContinualCounter::ContinualCounter(std::int64_t horizon, double epsilon,
                                   const Rng& rng)
    : horizon_(horizon),
      epsilon_(epsilon),
      noise_scale_(0.0),
      tree_(horizon, 2),
      rng_(rng),
      exact_(static_cast<std::size_t>(tree_.node_count()), 0.0),
      noisy_(static_cast<std::size_t>(tree_.node_count()), 0.0),
      completed_(static_cast<std::size_t>(tree_.node_count()), false) {
  DPHIST_CHECK_MSG(horizon >= 1, "horizon must be positive");
  DPHIST_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  noise_scale_ = static_cast<double>(tree_.height()) / epsilon_;
}

Result<ContinualCounter> ContinualCounter::Create(std::int64_t horizon,
                                                  double epsilon,
                                                  const Rng& rng) {
  if (horizon < 1) {
    return Status::InvalidArgument("horizon must be positive");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return ContinualCounter(horizon, epsilon, rng);
}

void ContinualCounter::Observe(double count) {
  DPHIST_CHECK_MSG(steps_ < horizon_, "stream exceeded the horizon");
  std::int64_t pos = steps_;
  // Accumulate into every dyadic interval containing this step.
  std::int64_t v = tree_.LeafNode(pos);
  while (true) {
    exact_[static_cast<std::size_t>(v)] += count;
    if (tree_.IsRoot(v)) break;
    v = tree_.Parent(v);
  }
  ++steps_;
  CompleteNodesEndingAt(pos);
}

void ContinualCounter::CompleteNodesEndingAt(std::int64_t pos) {
  LaplaceDistribution noise(noise_scale_);
  std::int64_t v = tree_.LeafNode(pos);
  while (true) {
    if (tree_.NodeRange(v).hi() == pos) {
      DPHIST_DCHECK(!completed_[static_cast<std::size_t>(v)]);
      noisy_[static_cast<std::size_t>(v)] =
          exact_[static_cast<std::size_t>(v)] + noise.Sample(&rng_);
      completed_[static_cast<std::size_t>(v)] = true;
    }
    if (tree_.IsRoot(v)) break;
    v = tree_.Parent(v);
  }
}

double ContinualCounter::PrefixEstimate(std::int64_t t) const {
  DPHIST_CHECK_MSG(t >= 1 && t <= steps_,
                   "prefix time must be within the observed stream");
  // Dyadic decomposition of [0, t-1]: walk the binary representation of
  // t, taking one completed block per set bit, from the left edge.
  double total = 0.0;
  std::int64_t start = 0;
  std::int64_t remaining = t;
  std::int64_t block = tree_.leaf_count();
  std::int64_t depth = 0;
  while (remaining > 0) {
    if (remaining >= block) {
      // The block [start, start + block) is a complete dyadic node at
      // this depth.
      std::int64_t index_in_level = start / block;
      std::int64_t v = tree_.LevelStart(depth) + index_in_level;
      DPHIST_DCHECK(completed_[static_cast<std::size_t>(v)]);
      total += noisy_[static_cast<std::size_t>(v)];
      start += block;
      remaining -= block;
    }
    block /= 2;
    ++depth;
  }
  return total;
}

double ContinualCounter::RunningTotal() const {
  if (steps_ == 0) return 0.0;
  return PrefixEstimate(steps_);
}

std::int64_t ContinualCounter::TermCount(std::int64_t t) {
  std::int64_t bits = 0;
  while (t > 0) {
    bits += t & 1;
    t >>= 1;
  }
  return bits;
}

}  // namespace dphist
