// Differentially private equi-depth histogram in the style of Blum,
// Ligett, and Roth (STOC 2008) — the comparator of Appendix E.
//
// Blum et al.'s implementation is not public, so per the reproduction
// ground rules we implement the algorithm their paper (and Appendix E's
// description "binary search equi-depth histogram") sketches:
//
//   1. Estimate the total N with one noisy count.
//   2. For j = 1..B-1, binary-search the position where the prefix count
//      crosses j*N/B, answering each probe with a fresh Laplace-noised
//      prefix count. Each prefix count has sensitivity 1; the privacy
//      budget is split evenly across all probes (sequential composition),
//      so the whole construction is epsilon-DP.
//   3. Publish the B bucket boundaries; each bucket is assumed to hold
//      N/B mass spread uniformly (the equi-depth synthetic data of BLR).
//
// Range queries integrate the piecewise-uniform density. The substitution
// preserves what Appendix E measures: absolute range-query error that
// grows with database size N (the boundaries blur as counts scale), in
// contrast to H~ whose error is independent of N.
//
// Appendix E's analytic (epsilon,delta)-usefulness bounds for both
// techniques are also provided for the bench's bound table.

#ifndef DPHIST_ESTIMATORS_BLUM_HISTOGRAM_H_
#define DPHIST_ESTIMATORS_BLUM_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"

namespace dphist {

/// Parameters of the equi-depth construction.
struct BlumHistogramConfig {
  /// Privacy parameter for the whole construction.
  double epsilon = 1.0;
  /// Number of equi-depth buckets B (>= 1).
  std::int64_t num_bins = 16;
};

/// Equi-depth DP histogram supporting range counts.
class BlumEquiDepthHistogram : public RangeCountEstimator {
 public:
  BlumEquiDepthHistogram(const Histogram& data,
                         const BlumHistogramConfig& config, Rng* rng);

  double RangeCount(const Interval& range) const override;
  std::string Name() const override { return "BLR"; }

  /// Noisy estimate of the database size used for bucket mass.
  double estimated_total() const { return estimated_total_; }

  /// Bucket upper boundaries (positions), ascending, one per bucket.
  const std::vector<std::int64_t>& boundaries() const { return boundaries_; }

 private:
  std::int64_t domain_size_;
  double estimated_total_;
  double mass_per_bin_;
  std::vector<std::int64_t> boundaries_;
};

/// Appendix E: smallest database size N for which H~ is
/// (eps, delta)-useful at privacy alpha over a domain of size n:
///   N >= 16 * ell^{3/2} * ln(2 n^2 / delta) / (eps * alpha).
double HTildeUsefulDatabaseSize(std::int64_t domain_size, double eps,
                                double delta, double alpha);

/// Appendix E: Blum et al.'s bound (big-O with unit constant):
///   N >= log n * (log log n + log(1/delta)) / (eps * alpha^3).
double BlumUsefulDatabaseSize(std::int64_t domain_size, double eps,
                              double delta, double alpha);

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_BLUM_HISTOGRAM_H_
