#include "estimators/universal.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "inference/hierarchical.h"
#include "inference/nonnegative_pruning.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "query/unit_query.h"
#include "tree/range_decomposition.h"

namespace dphist {
namespace {

std::vector<double> PrefixSums(const std::vector<double>& values) {
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  return prefix;
}

double PrefixRangeSum(const std::vector<double>& prefix,
                      const Interval& range) {
  DPHIST_CHECK_MSG(
      range.lo() >= 0 &&
          range.hi() < static_cast<std::int64_t>(prefix.size()) - 1,
      "range outside the estimator's domain");
  return prefix[static_cast<std::size_t>(range.hi()) + 1] -
         prefix[static_cast<std::size_t>(range.lo())];
}

double RoundAnswer(double answer, bool enabled) {
  if (!enabled) return answer;
  return answer <= 0.0 ? 0.0 : std::round(answer);
}

/// Shared validation behind the Create factories: everything the plain
/// constructors CHECK, as a Status. `needs_tree` adds the hierarchical
/// strategies' branching requirement.
Status ValidateUniversalBuild(const Histogram& data,
                              const UniversalOptions& options, Rng* rng,
                              bool needs_tree) {
  if (rng == nullptr) {
    return Status::InvalidArgument("universal estimator needs an RNG");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.size() < 1) {
    return Status::InvalidArgument(
        "universal estimator needs a non-empty domain");
  }
  if (needs_tree && options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  return Status::Ok();
}

}  // namespace

LTildeEstimator::LTildeEstimator(const Histogram& data,
                                 const UniversalOptions& options, Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers) {
  UnitQuery query(data.size());
  LaplaceMechanism mechanism(options.epsilon);
  leaves_ = mechanism.AnswerQuery(query, data, rng);
  prefix_ = PrefixSums(leaves_);
}

LTildeEstimator::LTildeEstimator(const UniversalOptions& options,
                                 std::vector<double> leaves)
    : round_answers_(options.round_to_nonnegative_integers),
      leaves_(std::move(leaves)) {
  prefix_ = PrefixSums(leaves_);
}

Result<std::unique_ptr<LTildeEstimator>> LTildeEstimator::Create(
    const Histogram& data, const UniversalOptions& options, Rng* rng) {
  Status valid = ValidateUniversalBuild(data, options, rng,
                                        /*needs_tree=*/false);
  if (!valid.ok()) return valid;
  return std::make_unique<LTildeEstimator>(data, options, rng);
}

Result<std::unique_ptr<LTildeEstimator>> LTildeEstimator::Restore(
    const UniversalOptions& options, std::vector<double> leaves) {
  if (leaves.empty()) {
    return Status::InvalidArgument("L~ restore needs a non-empty domain");
  }
  return std::unique_ptr<LTildeEstimator>(
      new LTildeEstimator(options, std::move(leaves)));
}

double LTildeEstimator::RangeCount(const Interval& range) const {
  return RoundAnswer(PrefixRangeSum(prefix_, range), round_answers_);
}

void LTildeEstimator::RangeCountsInto(const Interval* ranges,
                                      std::size_t count, double* out) const {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = RoundAnswer(PrefixRangeSum(prefix_, ranges[i]), round_answers_);
  }
}

HTildeEstimator::HTildeEstimator(const Histogram& data,
                                 const UniversalOptions& options, Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers),
      domain_size_(data.size()),
      tree_(data.size(), options.branching) {
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  nodes_ = mechanism.AnswerQuery(query, data, rng);
}

HTildeEstimator::HTildeEstimator(std::int64_t domain_size,
                                 const UniversalOptions& options,
                                 std::vector<double> noisy_nodes)
    : round_answers_(options.round_to_nonnegative_integers),
      domain_size_(domain_size),
      tree_(domain_size, options.branching),
      nodes_(std::move(noisy_nodes)) {
  DPHIST_CHECK_MSG(
      nodes_.size() == static_cast<std::size_t>(tree_.node_count()),
      "noisy node vector does not match the tree");
}

Result<std::unique_ptr<HTildeEstimator>> HTildeEstimator::Create(
    const Histogram& data, const UniversalOptions& options, Rng* rng) {
  Status valid = ValidateUniversalBuild(data, options, rng,
                                        /*needs_tree=*/true);
  if (!valid.ok()) return valid;
  return std::make_unique<HTildeEstimator>(data, options, rng);
}

Result<std::unique_ptr<HTildeEstimator>> HTildeEstimator::Restore(
    std::int64_t domain_size, const UniversalOptions& options,
    std::vector<double> noisy_nodes) {
  if (domain_size < 1) {
    return Status::InvalidArgument("H~ restore needs a non-empty domain");
  }
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  const TreeLayout tree(domain_size, options.branching);
  if (noisy_nodes.size() != static_cast<std::size_t>(tree.node_count())) {
    return Status::InvalidArgument(
        "persisted H~ node vector does not match the tree");
  }
  return std::make_unique<HTildeEstimator>(domain_size, options,
                                           std::move(noisy_nodes));
}

double HTildeEstimator::RangeCountImpl(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the estimator's domain");
  double total = 0.0;
  ForEachRangeNode(tree_, range, [&](std::int64_t v) {
    total += nodes_[static_cast<std::size_t>(v)];
  });
  return RoundAnswer(total, round_answers_);
}

double HTildeEstimator::RangeCount(const Interval& range) const {
  return RangeCountImpl(range);
}

void HTildeEstimator::RangeCountsInto(const Interval* ranges,
                                      std::size_t count, double* out) const {
  for (std::size_t i = 0; i < count; ++i) out[i] = RangeCountImpl(ranges[i]);
}

HBarEstimator::HBarEstimator(const Histogram& data,
                             const UniversalOptions& options, Rng* rng)
    : domain_size_(data.size()), tree_(data.size(), options.branching) {
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  FinishConstruction(options, mechanism.AnswerQuery(query, data, rng));
}

HBarEstimator::HBarEstimator(std::int64_t domain_size,
                             const UniversalOptions& options,
                             const std::vector<double>& noisy_nodes)
    : domain_size_(domain_size), tree_(domain_size, options.branching) {
  FinishConstruction(options, noisy_nodes);
}

HBarEstimator::HBarEstimator(RestoreTag, std::int64_t domain_size,
                             std::vector<double> final_nodes,
                             std::int64_t branching)
    : domain_size_(domain_size),
      tree_(domain_size, branching),
      nodes_(std::move(final_nodes)) {
  ComputeLeafState();
}

Result<std::unique_ptr<HBarEstimator>> HBarEstimator::Create(
    const Histogram& data, const UniversalOptions& options, Rng* rng) {
  Status valid = ValidateUniversalBuild(data, options, rng,
                                        /*needs_tree=*/true);
  if (!valid.ok()) return valid;
  return std::make_unique<HBarEstimator>(data, options, rng);
}

Result<std::unique_ptr<HBarEstimator>> HBarEstimator::Restore(
    std::int64_t domain_size, const UniversalOptions& options,
    std::vector<double> final_nodes) {
  if (domain_size < 1) {
    return Status::InvalidArgument("H-bar restore needs a non-empty domain");
  }
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  const TreeLayout tree(domain_size, options.branching);
  if (final_nodes.size() != static_cast<std::size_t>(tree.node_count())) {
    return Status::InvalidArgument(
        "persisted H-bar node vector does not match the tree");
  }
  return std::unique_ptr<HBarEstimator>(
      new HBarEstimator(RestoreTag{}, domain_size, std::move(final_nodes),
                        options.branching));
}

void HBarEstimator::FinishConstruction(
    const UniversalOptions& options, const std::vector<double>& noisy_nodes) {
  DPHIST_CHECK_MSG(
      noisy_nodes.size() == static_cast<std::size_t>(tree_.node_count()),
      "noisy node vector does not match the tree");
  HierarchicalInferenceResult inference =
      HierarchicalInference(tree_, noisy_nodes);
  nodes_ = std::move(inference.node_estimates);
  if (options.prune_nonpositive_subtrees) {
    nodes_ = PruneNonPositiveSubtrees(tree_, nodes_);
  }
  if (options.round_to_nonnegative_integers) {
    nodes_ = RoundToNonNegativeIntegers(nodes_);
  }
  ComputeLeafState();
}

void HBarEstimator::ComputeLeafState() {
  leaves_ = LeafEstimates(tree_, nodes_, domain_size_);

  // Inference makes the tree exactly consistent; pruning and rounding can
  // re-break it. The fast path answers a range as a difference of two
  // leaf prefix sums, which equals the decomposition answer iff every
  // node that could appear in a decomposition agrees with the sum of its
  // leaf descendants. Verify exactly that, node by node against the
  // prefix array — a per-parent tolerance would let tiny violations
  // compound over a subtree, this per-node check cannot: any range's two
  // answers then differ by at most (decomposition size) * tolerance.
  // Only nodes fully inside the real (unpadded) domain matter: a
  // decomposition of an in-domain range never touches padding.
  prefix_ = PrefixSums(leaves_);
  double max_abs = 0.0;
  for (double v : nodes_) max_abs = std::max(max_abs, std::abs(v));
  const double tolerance = 1e-9 * std::max(1.0, max_abs);
  consistent_ = true;
  std::int64_t width = tree_.leaf_count();
  for (std::int64_t depth = 0; depth < tree_.height() && consistent_;
       ++depth) {
    const std::int64_t level_start = tree_.LevelStart(depth);
    const std::int64_t level_size = tree_.LevelSize(depth);
    for (std::int64_t i = 0; i < level_size; ++i) {
      const std::int64_t lo = i * width;
      if (lo + width > domain_size_) break;  // rest of level hits padding
      const double from_prefix =
          prefix_[static_cast<std::size_t>(lo + width)] -
          prefix_[static_cast<std::size_t>(lo)];
      if (std::abs(nodes_[static_cast<std::size_t>(level_start + i)] -
                   from_prefix) > tolerance) {
        consistent_ = false;
        break;
      }
    }
    width /= tree_.branching();
  }
  if (!consistent_) {
    prefix_.clear();
    prefix_.shrink_to_fit();
  }
}

double HBarEstimator::DecompositionAnswer(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the estimator's domain");
  double total = 0.0;
  ForEachRangeNode(tree_, range, [&](std::int64_t v) {
    total += nodes_[static_cast<std::size_t>(v)];
  });
  return total;
}

double HBarEstimator::RangeCount(const Interval& range) const {
  if (consistent_) {
    DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                     "range outside the estimator's domain");
    return prefix_[static_cast<std::size_t>(range.hi()) + 1] -
           prefix_[static_cast<std::size_t>(range.lo())];
  }
  return DecompositionAnswer(range);
}

void HBarEstimator::RangeCountsInto(const Interval* ranges, std::size_t count,
                                    double* out) const {
  if (consistent_) {
    for (std::size_t i = 0; i < count; ++i) {
      const Interval& q = ranges[i];
      DPHIST_CHECK_MSG(q.lo() >= 0 && q.hi() < domain_size_,
                       "range outside the estimator's domain");
      out[i] = prefix_[static_cast<std::size_t>(q.hi()) + 1] -
               prefix_[static_cast<std::size_t>(q.lo())];
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = DecompositionAnswer(ranges[i]);
  }
}

double HBarEstimator::RangeCountViaDecomposition(const Interval& range) const {
  return DecompositionAnswer(range);
}

}  // namespace dphist
