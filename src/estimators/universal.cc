#include "estimators/universal.h"

#include <utility>

#include "common/check.h"
#include "inference/hierarchical.h"
#include "inference/nonnegative_pruning.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "query/unit_query.h"
#include "tree/range_decomposition.h"

namespace dphist {
namespace {

std::vector<double> PrefixSums(const std::vector<double>& values) {
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  return prefix;
}

double PrefixRangeSum(const std::vector<double>& prefix,
                      const Interval& range) {
  DPHIST_CHECK_MSG(
      range.lo() >= 0 &&
          range.hi() < static_cast<std::int64_t>(prefix.size()) - 1,
      "range outside the estimator's domain");
  return prefix[static_cast<std::size_t>(range.hi()) + 1] -
         prefix[static_cast<std::size_t>(range.lo())];
}

double RoundAnswer(double answer, bool enabled) {
  if (!enabled) return answer;
  return answer <= 0.0 ? 0.0 : std::round(answer);
}

}  // namespace

LTildeEstimator::LTildeEstimator(const Histogram& data,
                                 const UniversalOptions& options, Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers) {
  UnitQuery query(data.size());
  LaplaceMechanism mechanism(options.epsilon);
  leaves_ = mechanism.AnswerQuery(query, data, rng);
  prefix_ = PrefixSums(leaves_);
}

double LTildeEstimator::RangeCount(const Interval& range) const {
  return RoundAnswer(PrefixRangeSum(prefix_, range), round_answers_);
}

HTildeEstimator::HTildeEstimator(const Histogram& data,
                                 const UniversalOptions& options, Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers),
      domain_size_(data.size()),
      tree_(data.size(), options.branching) {
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  nodes_ = mechanism.AnswerQuery(query, data, rng);
}

HTildeEstimator::HTildeEstimator(std::int64_t domain_size,
                                 const UniversalOptions& options,
                                 std::vector<double> noisy_nodes)
    : round_answers_(options.round_to_nonnegative_integers),
      domain_size_(domain_size),
      tree_(domain_size, options.branching),
      nodes_(std::move(noisy_nodes)) {
  DPHIST_CHECK_MSG(
      nodes_.size() == static_cast<std::size_t>(tree_.node_count()),
      "noisy node vector does not match the tree");
}

double HTildeEstimator::RangeCount(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the estimator's domain");
  double total = 0.0;
  for (std::int64_t v : DecomposeRange(tree_, range)) {
    total += nodes_[static_cast<std::size_t>(v)];
  }
  return RoundAnswer(total, round_answers_);
}

HBarEstimator::HBarEstimator(const Histogram& data,
                             const UniversalOptions& options, Rng* rng)
    : domain_size_(data.size()), tree_(data.size(), options.branching) {
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  FinishConstruction(options, mechanism.AnswerQuery(query, data, rng));
}

HBarEstimator::HBarEstimator(std::int64_t domain_size,
                             const UniversalOptions& options,
                             const std::vector<double>& noisy_nodes)
    : domain_size_(domain_size), tree_(domain_size, options.branching) {
  FinishConstruction(options, noisy_nodes);
}

void HBarEstimator::FinishConstruction(
    const UniversalOptions& options, const std::vector<double>& noisy_nodes) {
  DPHIST_CHECK_MSG(
      noisy_nodes.size() == static_cast<std::size_t>(tree_.node_count()),
      "noisy node vector does not match the tree");
  HierarchicalInferenceResult inference =
      HierarchicalInference(tree_, noisy_nodes);
  nodes_ = std::move(inference.node_estimates);
  if (options.prune_nonpositive_subtrees) {
    nodes_ = PruneNonPositiveSubtrees(tree_, nodes_);
  }
  if (options.round_to_nonnegative_integers) {
    nodes_ = RoundToNonNegativeIntegers(nodes_);
  }
  leaves_ = LeafEstimates(tree_, nodes_, domain_size_);
}

double HBarEstimator::RangeCount(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the estimator's domain");
  double total = 0.0;
  for (std::int64_t v : DecomposeRange(tree_, range)) {
    total += nodes_[static_cast<std::size_t>(v)];
  }
  return total;
}

}  // namespace dphist
