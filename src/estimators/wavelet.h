// The Haar-wavelet strategy of Xiao, Wang, and Gehrke (ICDE 2010),
// "Privelet" — the related-work comparator of Section 6.
//
// The paper notes: "Xiao et al. propose an approach based on the Haar
// wavelet, which is conceptually similar to the H query ... that
// technique has error equivalent to a binary H query, as shown by Li et
// al.". We implement it so the equivalence claim can be measured
// (bench_wavelet_equivalence).
//
// Mechanism (for a domain padded to n = 2^h):
//   - compute the Haar decomposition: a base coefficient c0 (the global
//     average) and, for each internal node of the dyadic tree at level j
//     (j = 1 at the leaf-adjacent level .. h at the root), a detail
//     coefficient (avg(left half) - avg(right half)) / 2;
//   - adding/removing one record changes c0 by 1/n and each of the h
//     detail coefficients on the leaf's root path by 2^-j, so with
//     weights W(c0) = n and W(c_j) = 2^j the *weighted* L1 sensitivity is
//     exactly 1 + h = 1 + log2 n;
//   - add Lap((1 + h) / (eps * W(c))) noise to every coefficient — an
//     eps-differentially-private release (the generalized Laplace
//     mechanism with per-coordinate weights);
//   - reconstruct leaf estimates by the inverse transform; range queries
//     sum reconstructed leaves (final answer optionally rounded,
//     Section 5.2 semantics).

#ifndef DPHIST_ESTIMATORS_WAVELET_H_
#define DPHIST_ESTIMATORS_WAVELET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"

namespace dphist {

/// Forward Haar transform of a power-of-two-length vector.
/// Output layout: index 0 holds the base coefficient (global average);
/// index i >= 1 holds the detail coefficient of dyadic node i in BFS
/// order (node 1 = root split, children of i at 2i and 2i+1).
std::vector<double> HaarTransform(const std::vector<double>& values);

/// Inverse of HaarTransform.
std::vector<double> InverseHaarTransform(
    const std::vector<double>& coefficients);

/// The weighted L1 sensitivity of the Haar coefficient vector for a
/// domain padded to 2^height_minus_one leaves: 1 + log2(n).
double HaarWeightedSensitivity(std::int64_t padded_leaf_count);

/// Options for the wavelet estimator.
struct WaveletOptions {
  double epsilon = 1.0;
  /// Round final range answers to non-negative integers (Section 5.2).
  bool round_to_nonnegative_integers = true;
};

/// Privelet-style epsilon-DP range-count estimator.
class WaveletEstimator : public RangeCountEstimator {
 public:
  WaveletEstimator(const Histogram& data, const WaveletOptions& options,
                   Rng* rng);

  /// Validating construction for serving paths: invalid options or a
  /// missing RNG become a Status instead of aborting the process. The
  /// plain constructor keeps its CHECKs for the experiment binaries.
  static Result<std::unique_ptr<WaveletEstimator>> Create(
      const Histogram& data, const WaveletOptions& options, Rng* rng);

  /// Rebuilds the estimator from persisted reconstructed leaves: padding
  /// geometry and the prefix table are recomputed deterministically, so
  /// every answer is bit-identical to the original's. Fails on an empty
  /// vector.
  static Result<std::unique_ptr<WaveletEstimator>> Restore(
      const WaveletOptions& options, std::vector<double> leaves);

  double RangeCount(const Interval& range) const override;
  std::string Name() const override { return "Wavelet"; }

  /// Reconstruction happens once at build time; every answer afterwards
  /// is one prefix difference over the reconstructed leaves.
  double RangeCostHint(const Interval& range) const override {
    (void)range;
    return 1.0;
  }

  /// Prefix-served over the reconstructed leaves, rounding the final
  /// answer exactly when Section 5.2 rounding is on.
  PrefixAnswerView PrefixView() const override {
    return {prefix_.data(), domain_size_, round_answers_};
  }

  /// Reconstructed per-position estimates (raw; domain-sized).
  const std::vector<double>& leaf_estimates() const { return leaves_; }

  /// Padded transform length (power of two).
  std::int64_t padded_size() const { return padded_size_; }

  /// The reconstructed leaves: everything Restore needs.
  const std::vector<double>* SerializableState() const override {
    return &leaves_;
  }

 private:
  WaveletEstimator(const WaveletOptions& options, std::vector<double> leaves);

  bool round_answers_;
  std::int64_t domain_size_;
  std::int64_t padded_size_;
  std::vector<double> leaves_;
  std::vector<double> prefix_;
};

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_WAVELET_H_
