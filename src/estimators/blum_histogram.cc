#include "estimators/blum_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/laplace.h"

namespace dphist {

BlumEquiDepthHistogram::BlumEquiDepthHistogram(
    const Histogram& data, const BlumHistogramConfig& config, Rng* rng)
    : domain_size_(data.size()) {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK_MSG(config.epsilon > 0.0, "epsilon must be positive");
  DPHIST_CHECK_MSG(config.num_bins >= 1, "need at least one bin");
  const std::int64_t bins = std::min(config.num_bins, domain_size_);

  // Budget: one probe for the total, ceil(log2 n) probes per interior
  // boundary. Every probe is a sensitivity-1 count, so splitting epsilon
  // evenly makes the whole construction epsilon-DP by composition.
  std::int64_t probes_per_search = 1;
  while ((std::int64_t{1} << probes_per_search) < domain_size_) {
    ++probes_per_search;
  }
  std::int64_t total_probes = 1 + (bins - 1) * probes_per_search;
  double eps_per_probe = config.epsilon / static_cast<double>(total_probes);
  LaplaceDistribution probe_noise(1.0 / eps_per_probe);

  estimated_total_ =
      std::max(0.0, data.Total() + probe_noise.Sample(rng));
  mass_per_bin_ = estimated_total_ / static_cast<double>(bins);

  boundaries_.reserve(static_cast<std::size_t>(bins));
  std::int64_t previous = -1;
  for (std::int64_t j = 1; j < bins; ++j) {
    double target =
        static_cast<double>(j) * estimated_total_ / static_cast<double>(bins);
    // Noisy binary search for the first position whose prefix count
    // reaches `target`.
    std::int64_t lo = 0;
    std::int64_t hi = domain_size_ - 1;
    while (lo < hi) {
      std::int64_t mid = lo + (hi - lo) / 2;
      double noisy_prefix =
          data.Count(Interval(0, mid)) + probe_noise.Sample(rng);
      if (noisy_prefix < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::int64_t boundary = std::max(lo, previous + 1);
    boundary = std::min(boundary, domain_size_ - 1);
    boundaries_.push_back(boundary);
    previous = boundary;
  }
  boundaries_.push_back(domain_size_ - 1);
}

double BlumEquiDepthHistogram::RangeCount(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the estimator's domain");
  double total = 0.0;
  std::int64_t bin_lo = 0;
  for (std::size_t b = 0; b < boundaries_.size(); ++b) {
    std::int64_t bin_hi = boundaries_[b];
    if (bin_hi >= bin_lo) {  // Skip degenerate (empty) buckets.
      Interval bin(bin_lo, bin_hi);
      if (bin.Overlaps(range)) {
        std::int64_t overlap_lo = std::max(bin.lo(), range.lo());
        std::int64_t overlap_hi = std::min(bin.hi(), range.hi());
        double fraction =
            static_cast<double>(overlap_hi - overlap_lo + 1) /
            static_cast<double>(bin.Length());
        total += fraction * mass_per_bin_;
      }
    }
    bin_lo = bin_hi + 1;
  }
  return total;
}

double HTildeUsefulDatabaseSize(std::int64_t domain_size, double eps,
                                double delta, double alpha) {
  DPHIST_CHECK(domain_size >= 2);
  DPHIST_CHECK(eps > 0.0 && delta > 0.0 && delta < 1.0 && alpha > 0.0);
  double n = static_cast<double>(domain_size);
  double ell = std::ceil(std::log2(n)) + 1.0;
  return 16.0 * std::pow(ell, 1.5) * std::log(2.0 * n * n / delta) /
         (eps * alpha);
}

double BlumUsefulDatabaseSize(std::int64_t domain_size, double eps,
                              double delta, double alpha) {
  DPHIST_CHECK(domain_size >= 2);
  DPHIST_CHECK(eps > 0.0 && delta > 0.0 && delta < 1.0 && alpha > 0.0);
  double n = static_cast<double>(domain_size);
  double log_n = std::log2(n);
  return log_n * (std::log2(std::max(2.0, log_n)) + std::log2(1.0 / delta)) /
         (eps * alpha * alpha * alpha);
}

}  // namespace dphist
