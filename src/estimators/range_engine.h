// Common interface for private range-count estimators plus workload
// generation helpers shared by the universal-histogram experiments.

#ifndef DPHIST_ESTIMATORS_RANGE_ENGINE_H_
#define DPHIST_ESTIMATORS_RANGE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "domain/interval.h"

namespace dphist {

/// Zero-copy view of an estimator whose every range answer is one
/// prefix-sum difference: answer([lo, hi]) = prefix[hi + 1] - prefix[lo],
/// rounded to the nearest non-negative integer iff `round_final_answer`.
/// An empty view (null prefix) means the estimator answers by a
/// decomposition walk instead and cannot be flattened into the batch
/// answer engine's columnar plan (engine/answer_plan.h).
struct PrefixAnswerView {
  /// `size + 1` entries; prefix[0] == 0. Valid while the estimator lives.
  const double* prefix = nullptr;
  /// Leaf count (the estimator's domain size).
  std::int64_t size = 0;
  bool round_final_answer = false;
};

/// Anything that can answer c([x, y]) from a privately derived state.
class RangeCountEstimator {
 public:
  virtual ~RangeCountEstimator() = default;

  /// Estimated count for the range.
  virtual double RangeCount(const Interval& range) const = 0;

  /// Batched answering: fills `out[i]` with the answer for `ranges[i]`.
  /// The default forwards to RangeCount once per range; estimators
  /// override it with a tight loop so a whole workload pays one virtual
  /// dispatch and no per-query allocation.
  virtual void RangeCountsInto(const Interval* ranges, std::size_t count,
                               double* out) const;

  /// Convenience form of the batched path.
  std::vector<double> RangeCounts(const std::vector<Interval>& ranges) const;

  /// Estimated work to recompute the answer for `range`, in units of one
  /// O(1) lookup (1.0 = a leaf read or a prefix difference). The serving
  /// layer's cache admission policy compares this against a threshold:
  /// answers as cheap to recompute as a cache hit are not memoized, so
  /// they never squat on LRU capacity that expensive ranges need (see
  /// Snapshot::AdmitToCache). Must not allocate — it runs on the serving
  /// hot path. The default assumes recomputation is expensive (an
  /// unknown estimator's answers are always worth caching).
  virtual double RangeCostHint(const Interval& range) const {
    (void)range;
    return std::numeric_limits<double>::infinity();
  }

  /// The prefix-difference answer state, when this estimator has one
  /// (L~, wavelet, consistent H-bar); empty otherwise. The batch answer
  /// engine flattens non-empty views into its columnar AnswerPlan at
  /// publish time and serves them through SIMD kernels — the view's
  /// semantics must therefore match RangeCount bit for bit.
  virtual PrefixAnswerView PrefixView() const { return {}; }

  /// Short name for reports ("L~", "H~", "H-bar", ...).
  virtual std::string Name() const = 0;

  /// The minimal vector of doubles from which a per-strategy Restore
  /// factory can rebuild this estimator with bit-identical answers (the
  /// noise was drawn once at construction; everything else is
  /// deterministic post-processing). Returns nullptr when the estimator
  /// does not support persistence — the storage layer then refuses to
  /// snapshot it rather than persisting something it cannot revive.
  virtual const std::vector<double>* SerializableState() const {
    return nullptr;
  }
};

/// Draws `count` ranges of exactly `size` positions with uniformly random
/// location inside a domain of `domain_size` (the Fig. 6 workload).
/// Requires 1 <= size <= domain_size.
std::vector<Interval> RandomRangesOfSize(std::int64_t domain_size,
                                         std::int64_t size,
                                         std::int64_t count, Rng* rng);

/// Every range size used by the Fig. 6 sweep: 2^1, 2^2, ..., 2^(height-2)
/// for a binary tree of the given height, clipped to the domain.
std::vector<std::int64_t> Fig6RangeSizes(std::int64_t domain_size);

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_RANGE_ENGINE_H_
