// Common interface for private range-count estimators plus workload
// generation helpers shared by the universal-histogram experiments.

#ifndef DPHIST_ESTIMATORS_RANGE_ENGINE_H_
#define DPHIST_ESTIMATORS_RANGE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "domain/interval.h"

namespace dphist {

/// Anything that can answer c([x, y]) from a privately derived state.
class RangeCountEstimator {
 public:
  virtual ~RangeCountEstimator() = default;

  /// Estimated count for the range.
  virtual double RangeCount(const Interval& range) const = 0;

  /// Batched answering: fills `out[i]` with the answer for `ranges[i]`.
  /// The default forwards to RangeCount once per range; estimators
  /// override it with a tight loop so a whole workload pays one virtual
  /// dispatch and no per-query allocation.
  virtual void RangeCountsInto(const Interval* ranges, std::size_t count,
                               double* out) const;

  /// Convenience form of the batched path.
  std::vector<double> RangeCounts(const std::vector<Interval>& ranges) const;

  /// True when a unit range ([x, x]) is answered in O(1) — a leaf read
  /// or a prefix difference rather than a tree walk. The serving layer's
  /// cache admission policy skips memoizing such answers: recomputing is
  /// as cheap as the cache hit, so the entry would only squat on LRU
  /// capacity that expensive ranges need (see Snapshot::AdmitToCache).
  virtual bool UnitRangeIsO1() const { return false; }

  /// Short name for reports ("L~", "H~", "H-bar", ...).
  virtual std::string Name() const = 0;
};

/// Draws `count` ranges of exactly `size` positions with uniformly random
/// location inside a domain of `domain_size` (the Fig. 6 workload).
/// Requires 1 <= size <= domain_size.
std::vector<Interval> RandomRangesOfSize(std::int64_t domain_size,
                                         std::int64_t size,
                                         std::int64_t count, Rng* rng);

/// Every range size used by the Fig. 6 sweep: 2^1, 2^2, ..., 2^(height-2)
/// for a binary tree of the given height, clipped to the domain.
std::vector<std::int64_t> Fig6RangeSizes(std::int64_t domain_size);

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_RANGE_ENGINE_H_
