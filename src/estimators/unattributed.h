// Unattributed-histogram estimators (Section 3, Figure 5).
//
// The pipeline is: draw s~ = S~(I) once (the only privacy-relevant step),
// then apply any of three post-processors:
//   S~   : the noisy answer as-is (baseline),
//   S~r  : sort + round to non-negative integers (consistency by fiat),
//   S-bar: isotonic regression (the paper's constrained inference).
// Separating sampling from estimation lets experiments evaluate all three
// estimators on the *same* noisy draw, exactly as the paper does.

#ifndef DPHIST_ESTIMATORS_UNATTRIBUTED_H_
#define DPHIST_ESTIMATORS_UNATTRIBUTED_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "domain/histogram.h"

namespace dphist {

/// The three Fig. 5 estimators.
enum class UnattributedEstimator {
  kSTilde,         // noisy answer, no post-processing
  kSTildeRounded,  // sort then round to non-negative integers
  kSBar,           // isotonic regression (constrained inference)
};

/// All estimators in the order Fig. 5 plots them.
inline constexpr UnattributedEstimator kAllUnattributedEstimators[] = {
    UnattributedEstimator::kSTilde, UnattributedEstimator::kSTildeRounded,
    UnattributedEstimator::kSBar};

/// Display name ("S~", "S~r", "S-bar").
std::string UnattributedEstimatorName(UnattributedEstimator estimator);

/// The true sorted sequence S(I).
std::vector<double> TrueSortedCounts(const Histogram& data);

/// Draws s~ = S(I) + Lap(1/epsilon)^n — an epsilon-DP answer to S.
std::vector<double> SampleNoisySortedCounts(const Histogram& data,
                                            double epsilon, Rng* rng);

/// Applies the chosen post-processor to a noisy draw.
std::vector<double> ApplyUnattributedEstimator(
    UnattributedEstimator estimator, const std::vector<double>& noisy);

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_UNATTRIBUTED_H_
