// Two-dimensional universal histograms — Appendix B's "multi-dimensional
// range queries" future-work item, realized with a quadtree.
//
// The estimator trio mirrors the 1-D case exactly:
//   L2d    : per-cell Laplace noise (sensitivity 1); rectangles answered
//            by summation — error grows with the rectangle's area.
//   Q2d~   : per-quadtree-node Laplace noise (sensitivity = tree height);
//            rectangles answered by the minimal quadtree decomposition —
//            error grows with the rectangle's *perimeter* profile.
//   Q2d-bar: Q2d~'s draw post-processed with Theorem 3's inference (the
//            k=4 tree needs no new math), Section 4.2 pruning, and
//            rounding; rectangles answered from the inferred nodes.

#ifndef DPHIST_ESTIMATORS_UNIVERSAL2D_H_
#define DPHIST_ESTIMATORS_UNIVERSAL2D_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "domain/grid.h"
#include "tree/quadtree.h"

namespace dphist {

/// Shared knobs for the 2-D estimators (mirrors UniversalOptions).
struct Universal2dOptions {
  double epsilon = 1.0;
  /// Round final rectangle answers (L2d/Q2d~) or inferred node estimates
  /// (Q2d-bar) to non-negative integers.
  bool round_to_nonnegative_integers = true;
  /// Zero out non-positive quadtree subtrees after inference (Q2d-bar).
  bool prune_nonpositive_subtrees = true;
};

/// Common interface for 2-D range-count estimators.
class RectCountEstimator {
 public:
  virtual ~RectCountEstimator() = default;
  /// Estimated count inside `rect`.
  virtual double RectCount(const Rect& rect) const = 0;
  /// Short display name.
  virtual std::string Name() const = 0;
};

/// Evaluates the quadtree counting query: one exact count per node.
std::vector<double> EvaluateQuadtreeCounts(const QuadtreeLayout& quad,
                                           const GridHistogram& data);

/// The flat per-cell strategy.
class L2dEstimator : public RectCountEstimator {
 public:
  L2dEstimator(const GridHistogram& data, const Universal2dOptions& options,
               Rng* rng);

  /// Validating construction for serving paths: invalid options or a
  /// missing RNG become a Status instead of aborting the process.
  static Result<std::unique_ptr<L2dEstimator>> Create(
      const GridHistogram& data, const Universal2dOptions& options, Rng* rng);

  double RectCount(const Rect& rect) const override;
  std::string Name() const override { return "L2d~"; }

 private:
  bool round_answers_;
  GridHistogram noisy_;
};

/// The raw quadtree strategy.
class Quad2dTildeEstimator : public RectCountEstimator {
 public:
  Quad2dTildeEstimator(const GridHistogram& data,
                       const Universal2dOptions& options, Rng* rng);

  /// Validating construction (see L2dEstimator::Create).
  static Result<std::unique_ptr<Quad2dTildeEstimator>> Create(
      const GridHistogram& data, const Universal2dOptions& options, Rng* rng);

  double RectCount(const Rect& rect) const override;
  std::string Name() const override { return "Q2d~"; }

  const QuadtreeLayout& quadtree() const { return quad_; }
  /// Raw noisy per-node answers.
  const std::vector<double>& node_answers() const { return nodes_; }

 private:
  bool round_answers_;
  std::int64_t rows_;
  std::int64_t cols_;
  QuadtreeLayout quad_;
  std::vector<double> nodes_;
};

/// The quadtree strategy with constrained inference.
class Quad2dBarEstimator : public RectCountEstimator {
 public:
  Quad2dBarEstimator(const GridHistogram& data,
                     const Universal2dOptions& options, Rng* rng);

  /// Builds from an existing noisy node vector (shared-draw comparisons).
  Quad2dBarEstimator(std::int64_t rows, std::int64_t cols,
                     const Universal2dOptions& options,
                     const std::vector<double>& noisy_nodes);

  /// Validating construction (see L2dEstimator::Create).
  static Result<std::unique_ptr<Quad2dBarEstimator>> Create(
      const GridHistogram& data, const Universal2dOptions& options, Rng* rng);

  double RectCount(const Rect& rect) const override;
  std::string Name() const override { return "Q2d-bar"; }

  const QuadtreeLayout& quadtree() const { return quad_; }
  /// Final per-node estimates (inferred, pruned, rounded per options).
  const std::vector<double>& node_estimates() const { return nodes_; }

 private:
  void FinishConstruction(const Universal2dOptions& options,
                          const std::vector<double>& noisy_nodes);

  std::int64_t rows_;
  std::int64_t cols_;
  QuadtreeLayout quad_;
  std::vector<double> nodes_;
};

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_UNIVERSAL2D_H_
