#include "estimators/wavelet.h"

#include <cmath>

#include "common/check.h"
#include "common/laplace.h"

namespace dphist {
namespace {

bool IsPowerOfTwo(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::int64_t PadToPowerOfTwo(std::int64_t n) {
  std::int64_t p = 1;
  while (p < n) p *= 2;
  return p;
}

std::vector<double> PrefixSums(const std::vector<double>& values) {
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  return prefix;
}

}  // namespace

std::vector<double> HaarTransform(const std::vector<double>& values) {
  std::int64_t n = static_cast<std::int64_t>(values.size());
  DPHIST_CHECK_MSG(IsPowerOfTwo(n), "Haar transform needs a power of two");
  // averages[] starts as the leaves and is halved level by level; the
  // detail coefficients are recorded in BFS positions as we ascend.
  std::vector<double> coefficients(values.size(), 0.0);
  std::vector<double> averages = values;
  std::int64_t width = n;  // number of blocks at the current level * 2
  while (width > 1) {
    std::int64_t half = width / 2;
    // The dyadic nodes being formed sit at BFS indices half..width-1:
    // when `width` blocks shrink to `half` blocks, node ids are
    // half + b for block b (matching the implicit heap order 1=root).
    for (std::int64_t b = 0; b < half; ++b) {
      double left = averages[static_cast<std::size_t>(2 * b)];
      double right = averages[static_cast<std::size_t>(2 * b + 1)];
      coefficients[static_cast<std::size_t>(half + b)] = (left - right) / 2.0;
      averages[static_cast<std::size_t>(b)] = (left + right) / 2.0;
    }
    width = half;
  }
  coefficients[0] = averages[0];  // global average
  return coefficients;
}

std::vector<double> InverseHaarTransform(
    const std::vector<double>& coefficients) {
  std::int64_t n = static_cast<std::int64_t>(coefficients.size());
  DPHIST_CHECK_MSG(IsPowerOfTwo(n), "Haar transform needs a power of two");
  std::vector<double> values(coefficients.size(), 0.0);
  values[0] = coefficients[0];
  // Descend: at each level, block b splits into 2b (left, +detail) and
  // 2b+1 (right, -detail) using the detail at BFS index half + b.
  std::int64_t width = 1;
  while (width < n) {
    for (std::int64_t b = width - 1; b >= 0; --b) {
      double avg = values[static_cast<std::size_t>(b)];
      double detail = coefficients[static_cast<std::size_t>(width + b)];
      values[static_cast<std::size_t>(2 * b)] = avg + detail;
      values[static_cast<std::size_t>(2 * b + 1)] = avg - detail;
    }
    width *= 2;
  }
  return values;
}

double HaarWeightedSensitivity(std::int64_t padded_leaf_count) {
  DPHIST_CHECK(IsPowerOfTwo(padded_leaf_count));
  return 1.0 + std::log2(static_cast<double>(padded_leaf_count));
}

WaveletEstimator::WaveletEstimator(const Histogram& data,
                                   const WaveletOptions& options, Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers),
      domain_size_(data.size()),
      padded_size_(PadToPowerOfTwo(data.size())) {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK_MSG(options.epsilon > 0.0, "epsilon must be positive");

  std::vector<double> padded(static_cast<std::size_t>(padded_size_), 0.0);
  for (std::int64_t i = 0; i < domain_size_; ++i) {
    padded[static_cast<std::size_t>(i)] = data.At(i);
  }
  std::vector<double> coefficients = HaarTransform(padded);

  // Per-coefficient weighted Laplace noise (the Privelet mechanism).
  const double sensitivity = HaarWeightedSensitivity(padded_size_);
  // Base coefficient: weight n.
  {
    LaplaceDistribution noise(
        sensitivity / (options.epsilon * static_cast<double>(padded_size_)));
    coefficients[0] += noise.Sample(rng);
  }
  // Detail coefficient of BFS node i: covers padded_size_ >> depth leaves,
  // weight equal to that block size.
  std::int64_t block = padded_size_;
  std::int64_t level_start = 1;
  while (level_start < padded_size_) {
    LaplaceDistribution noise(
        sensitivity / (options.epsilon * static_cast<double>(block)));
    for (std::int64_t i = level_start; i < 2 * level_start; ++i) {
      coefficients[static_cast<std::size_t>(i)] += noise.Sample(rng);
    }
    block /= 2;
    level_start *= 2;
  }

  std::vector<double> reconstructed = InverseHaarTransform(coefficients);
  leaves_.assign(reconstructed.begin(),
                 reconstructed.begin() + domain_size_);
  prefix_ = PrefixSums(leaves_);
}

WaveletEstimator::WaveletEstimator(const WaveletOptions& options,
                                   std::vector<double> leaves)
    : round_answers_(options.round_to_nonnegative_integers),
      domain_size_(static_cast<std::int64_t>(leaves.size())),
      padded_size_(PadToPowerOfTwo(static_cast<std::int64_t>(leaves.size()))),
      leaves_(std::move(leaves)) {
  prefix_ = PrefixSums(leaves_);
}

Result<std::unique_ptr<WaveletEstimator>> WaveletEstimator::Create(
    const Histogram& data, const WaveletOptions& options, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("wavelet estimator needs an RNG");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.size() < 1) {
    return Status::InvalidArgument("wavelet estimator needs a non-empty domain");
  }
  return std::make_unique<WaveletEstimator>(data, options, rng);
}

Result<std::unique_ptr<WaveletEstimator>> WaveletEstimator::Restore(
    const WaveletOptions& options, std::vector<double> leaves) {
  if (leaves.empty()) {
    return Status::InvalidArgument("wavelet restore needs a non-empty domain");
  }
  return std::unique_ptr<WaveletEstimator>(
      new WaveletEstimator(options, std::move(leaves)));
}

double WaveletEstimator::RangeCount(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the estimator's domain");
  double answer = prefix_[static_cast<std::size_t>(range.hi()) + 1] -
                  prefix_[static_cast<std::size_t>(range.lo())];
  if (!round_answers_) return answer;
  return answer <= 0.0 ? 0.0 : std::round(answer);
}

}  // namespace dphist
