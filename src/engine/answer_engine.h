// The columnar batch answer engine: answers whole query batches against
// a Snapshot's flattened AnswerPlan through the SIMD kernel ladder.
//
// Execution model (per batch):
//
//   1. One scalar grouping pass maps each query to its shard and folds
//      the shard's offset into a pair of absolute gather indices — so a
//      query's lanes always land inside its own shard's row of the
//      flattened table (shard grouping by index construction; no
//      reorder/scatter, which on <= 64-shard releases costs more than
//      the locality it buys). Shard-spanning queries are set aside.
//   2. One kernel sweep (engine/kernels.h) computes every single-shard
//      answer N-wide: gather, subtract, optional round.
//   3. Each spanning query expands into its clipped per-shard pieces —
//      first partial, full middle shards, last partial — which run
//      through the same kernel, then fold left-to-right in ascending
//      shard order. That is exactly the walker's summation order, so
//      spanning answers are bit-identical too.
//
// Scratch lives in thread-local arenas that grow to the high-water batch
// size and are then reused: steady-state batches perform zero heap
// allocations (proved by dphist_alloc_test).
//
// Counters: every batch/query answered is tallied per kernel level;
// `stats` and the server receipt surface them as engine_kernel= /
// engine_batches= / engine_queries=.

#ifndef DPHIST_ENGINE_ANSWER_ENGINE_H_
#define DPHIST_ENGINE_ANSWER_ENGINE_H_

#include <cstddef>
#include <cstdint>

#include "domain/interval.h"
#include "engine/answer_plan.h"
#include "engine/kernels.h"

namespace dphist::engine {

/// Answers `count` queries against `plan` into out[0..count). When `sel`
/// is null the queries are ranges[0..count); otherwise the j-th answered
/// query is ranges[sel[j]] (the cache-miss path: `ranges` is the chunk,
/// `sel` the miss positions). Every range must lie inside
/// [0, plan.domain_size) — the serving layer validates before calling.
/// Bit-identical to Snapshot::RangeCount at every dispatch level.
void AnswerBatch(const AnswerPlan& plan, const Interval* ranges,
                 const std::int32_t* sel, std::size_t count, double* out);

/// Cumulative process-wide batch/query tallies, indexed by KernelKind.
struct EngineCounters {
  std::uint64_t batches[kKernelKindCount] = {};
  std::uint64_t queries[kKernelKindCount] = {};

  std::uint64_t total_batches() const {
    std::uint64_t total = 0;
    for (std::uint64_t b : batches) total += b;
    return total;
  }
  std::uint64_t total_queries() const {
    std::uint64_t total = 0;
    for (std::uint64_t q : queries) total += q;
    return total;
  }
};

/// Snapshot of the counters (relaxed reads; exact once writers quiesce).
EngineCounters GlobalEngineCounters();

}  // namespace dphist::engine

#endif  // DPHIST_ENGINE_ANSWER_ENGINE_H_
