#include "engine/answer_engine.h"

#include <algorithm>
#include <atomic>
#include <vector>

namespace dphist::engine {
namespace {

struct CounterCell {
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> queries{0};
};
CounterCell g_counters[kKernelKindCount];

/// Per-thread arenas, grown to the high-water batch size and reused so
/// steady-state batches never touch the heap. Readers on different
/// threads answer concurrently against the same immutable plan.
struct Scratch {
  std::vector<std::int64_t> lo;         // absolute gather indices
  std::vector<std::int64_t> hi;
  std::vector<std::int32_t> spanning;   // out positions of spanning queries
  std::vector<std::int32_t> span_first; // their first/last shard ids
  std::vector<std::int32_t> span_last;
  std::vector<std::int64_t> piece_lo;   // the two partial end pieces of
  std::vector<std::int64_t> piece_hi;   // each spanning query
  std::vector<double> piece_out;
};

Scratch& LocalScratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace

void AnswerBatch(const AnswerPlan& plan, const Interval* ranges,
                 const std::int32_t* sel, std::size_t count, double* out) {
  if (count == 0) return;
  Scratch& s = LocalScratch();
  if (s.lo.size() < count) {
    s.lo.resize(count);
    s.hi.resize(count);
    s.spanning.resize(count);
    s.span_first.resize(count);
    s.span_last.resize(count);
    s.piece_lo.resize(2 * count);
    s.piece_hi.resize(2 * count);
    s.piece_out.resize(2 * count);
  }

  const std::int64_t width = plan.shard_width;
  const double* prefix = plan.prefix.data();
  const std::int64_t* offsets = plan.offsets.data();

  // Division-free shard locator (see AnswerPlan::shard_shift/shard_magic
  // — a hardware division here would cost more than the whole kernel).
  // Both branches predict perfectly: the selector is loop-invariant.
  const int shift = plan.shard_shift;
  const std::uint64_t magic = plan.shard_magic;
  const auto shard_of = [&](std::int64_t position) -> std::int64_t {
    if (shift >= 0) return position >> shift;
    if (magic != 0) {
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(
               static_cast<std::uint64_t>(position)) *
           magic) >>
          64));
    }
    return position / width;
  };

  // Grouping pass: fold each query's shard offset into absolute
  // indices. A spanning query (first != last) contributes its two
  // PARTIAL end pieces to the piece list — its middle shards are
  // covered completely, so their precomputed whole-shard answers
  // (plan.full_shard) stand in for kernel lanes. The end pieces need no
  // clipping: the first piece always runs to its shard's end (a later
  // shard holds q.hi()), the last always starts at its shard's base,
  // and neither can be the domain's short tail unless it holds the
  // query's own endpoint.
  std::size_t spans = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const Interval& q = ranges[sel != nullptr ? sel[j] : j];
    const std::int64_t first = shard_of(q.lo());
    const std::int64_t last = shard_of(q.hi());
    if (first == last) {
      const std::int64_t off = offsets[first] - first * width;
      s.lo[j] = off + q.lo();
      s.hi[j] = off + q.hi() + 1;
    } else {
      // Placeholder lanes (prefix[0] - prefix[0] = 0; rounding keeps 0);
      // the real answer lands in the spanning fold below.
      s.lo[j] = 0;
      s.hi[j] = 0;
      s.spanning[spans] = static_cast<std::int32_t>(j);
      s.span_first[spans] = static_cast<std::int32_t>(first);
      s.span_last[spans] = static_cast<std::int32_t>(last);
      s.piece_lo[2 * spans] = offsets[first] + (q.lo() - first * width);
      s.piece_hi[2 * spans] = offsets[first] + width;
      s.piece_lo[2 * spans + 1] = offsets[last];
      s.piece_hi[2 * spans + 1] = offsets[last] + (q.hi() - last * width) + 1;
      ++spans;
    }
  }

  const KernelKind kind = ActiveKernel();
  PrefixDiffKernel(kind, prefix, s.lo.data(), s.hi.data(), count,
                   plan.round_answers, out);

  // Spanning fold: one kernel sweep answers every end piece, then each
  // query folds first piece + middle whole-shard answers + last piece
  // in ascending shard order — the walker's exact summation order, so
  // the total is bit-identical to summing per-shard RangeCount calls.
  if (spans != 0) {
    PrefixDiffKernel(kind, prefix, s.piece_lo.data(), s.piece_hi.data(),
                     2 * spans, plan.round_answers, s.piece_out.data());
    const double* full = plan.full_shard.data();
    for (std::size_t m = 0; m < spans; ++m) {
      double total = s.piece_out[2 * m];
      for (std::int32_t shard = s.span_first[m] + 1; shard < s.span_last[m];
           ++shard) {
        total += full[shard];
      }
      total += s.piece_out[2 * m + 1];
      out[s.spanning[m]] = total;
    }
  }

  CounterCell& cell = g_counters[static_cast<int>(kind)];
  cell.batches.fetch_add(1, std::memory_order_relaxed);
  cell.queries.fetch_add(count, std::memory_order_relaxed);
}

EngineCounters GlobalEngineCounters() {
  EngineCounters counters;
  for (int k = 0; k < kKernelKindCount; ++k) {
    counters.batches[k] = g_counters[k].batches.load(std::memory_order_relaxed);
    counters.queries[k] = g_counters[k].queries.load(std::memory_order_relaxed);
  }
  return counters;
}

}  // namespace dphist::engine
