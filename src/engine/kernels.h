// Runtime-dispatched prefix-difference kernels for the answer engine.
//
// One kernel shape serves every flattened strategy:
//
//   out[i] = prefix[hi_idx[i]] - prefix[lo_idx[i]]        (round = false)
//   out[i] = max(0, round_half_away(prefix diff))         (round = true)
//
// where the indices are absolute positions inside an AnswerPlan's
// flattened table (the shard offset is folded into the index by the
// engine, so one sweep answers a batch spanning any number of shards).
//
// Three implementations sit behind one dispatch ladder — AVX2
// (4-wide i64 gathers + floor-based rounding), SSE2 (2-wide, scalar
// loads, 2^52-trick floor; baseline on x86-64), portable scalar — and
// every level is bit-identical: IEEE-754 subtraction is exact in every
// lane width, and for 0 < x < 2^52 the vectorized
// floor(x) + (x - floor(x) >= 0.5) equals std::round(x) exactly
// (x - floor(x) is exact by Sterbenz' lemma). The conformance suite
// (tests/engine/) property-tests this across all supported levels.
//
// Selection: the highest CPU-supported level wins; the
// DPHIST_FORCE_KERNEL environment variable (or ForceKernel, the flag /
// test hook) overrides it downward. Forcing a level the CPU lacks falls
// back to the best supported one.

#ifndef DPHIST_ENGINE_KERNELS_H_
#define DPHIST_ENGINE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace dphist::engine {

/// Dispatch levels, weakest first (the order is the fallback ladder).
enum class KernelKind {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};
inline constexpr int kKernelKindCount = 3;

/// Stable lowercase name ("scalar", "sse2", "avx2").
const char* KernelKindName(KernelKind kind);

/// Inverse of KernelKindName.
Result<KernelKind> ParseKernelKind(const std::string& name);

/// True when this machine can execute `kind`.
bool KernelSupported(KernelKind kind);

/// The highest supported level on this machine.
KernelKind BestSupportedKernel();

/// The level the engine will dispatch to: a ForceKernel override if one
/// is set, else DPHIST_FORCE_KERNEL from the environment (read once),
/// else BestSupportedKernel(). Unsupported requests clamp to the best
/// supported level.
KernelKind ActiveKernel();

/// Overrides ActiveKernel for this process (serve --kernel and the
/// conformance tests); nullopt restores env/auto selection.
void ForceKernel(std::optional<KernelKind> kind);

/// Runs the prefix-difference kernel at `kind` (caller obtains it from
/// ActiveKernel): out[i] = prefix[hi_idx[i]] - prefix[lo_idx[i]],
/// rounded to the nearest non-negative integer when `round`. Lanes are
/// independent; any count (including 0) is legal.
void PrefixDiffKernel(KernelKind kind, const double* prefix,
                      const std::int64_t* lo_idx, const std::int64_t* hi_idx,
                      std::size_t count, bool round, double* out);

}  // namespace dphist::engine

#endif  // DPHIST_ENGINE_KERNELS_H_
