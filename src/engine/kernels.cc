#include "engine/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define DPHIST_KERNELS_X86 1
#include <immintrin.h>
#else
#define DPHIST_KERNELS_X86 0
#endif

namespace dphist::engine {
namespace {

/// Reference rounding (the walker path's RoundAnswer): non-positive
/// answers clamp to +0.0, positive ones round half away from zero.
inline double RoundNonNegative(double x) {
  return x <= 0.0 ? 0.0 : std::round(x);
}

void ScalarKernel(const double* prefix, const std::int64_t* lo_idx,
                  const std::int64_t* hi_idx, std::size_t count, bool round,
                  double* out) {
  if (round) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = RoundNonNegative(prefix[hi_idx[i]] - prefix[lo_idx[i]]);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = prefix[hi_idx[i]] - prefix[lo_idx[i]];
    }
  }
}

#if DPHIST_KERNELS_X86

/// 2^52: doubles at or above it are integers, and adding it to a
/// smaller non-negative double rounds away every fractional bit.
constexpr double kTwoPow52 = 4503599627370496.0;

/// Branchless round-half-away-from-zero clamped at zero, 2-wide.
/// Bit-identical to RoundNonNegative: for 0 < x < 2^52,
/// floor(x) + (x - floor(x) >= 0.5) == std::round(x) exactly (the
/// fractional part is exact by Sterbenz), x >= 2^52 is already integral
/// and passes through, and x <= 0 (including -0.0) clamps to +0.0.
inline __m128d RoundNonNegativeSse2(__m128d x) {
  const __m128d big = _mm_set1_pd(kTwoPow52);
  const __m128d one = _mm_set1_pd(1.0);
  // Nearest-even integer of x via the 2^52 trick, corrected to floor.
  const __m128d nearest = _mm_sub_pd(_mm_add_pd(x, big), big);
  const __m128d floor_x =
      _mm_sub_pd(nearest, _mm_and_pd(_mm_cmpgt_pd(nearest, x), one));
  const __m128d frac = _mm_sub_pd(x, floor_x);
  __m128d rounded = _mm_add_pd(
      floor_x, _mm_and_pd(_mm_cmpge_pd(frac, _mm_set1_pd(0.5)), one));
  // x >= 2^52: the trick's domain ends; x is already an integer.
  const __m128d huge = _mm_cmpge_pd(x, big);
  rounded = _mm_or_pd(_mm_and_pd(huge, x), _mm_andnot_pd(huge, rounded));
  // x <= 0 (and -0.0): clamp to +0.0.
  return _mm_and_pd(rounded, _mm_cmpgt_pd(x, _mm_setzero_pd()));
}

void Sse2Kernel(const double* prefix, const std::int64_t* lo_idx,
                const std::int64_t* hi_idx, std::size_t count, bool round,
                double* out) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    // SSE2 has no gather; scalar loads feed the vector lanes.
    const __m128d lo =
        _mm_set_pd(prefix[lo_idx[i + 1]], prefix[lo_idx[i]]);
    const __m128d hi =
        _mm_set_pd(prefix[hi_idx[i + 1]], prefix[hi_idx[i]]);
    __m128d diff = _mm_sub_pd(hi, lo);
    if (round) diff = RoundNonNegativeSse2(diff);
    _mm_storeu_pd(out + i, diff);
  }
  ScalarKernel(prefix, lo_idx + i, hi_idx + i, count - i, round, out + i);
}

__attribute__((target("avx2")))
inline __m256d RoundNonNegativeAvx2(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d floor_x = _mm256_floor_pd(x);
  const __m256d frac = _mm256_sub_pd(x, floor_x);
  __m256d rounded = _mm256_add_pd(
      floor_x, _mm256_and_pd(
                   _mm256_cmp_pd(frac, _mm256_set1_pd(0.5), _CMP_GE_OQ), one));
  // True floor covers every magnitude (frac = 0 for x >= 2^52, so the
  // huge case needs no blend); only the non-positive clamp remains.
  return _mm256_and_pd(
      rounded, _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GT_OQ));
}

__attribute__((target("avx2")))
void Avx2Kernel(const double* prefix, const std::int64_t* lo_idx,
                const std::int64_t* hi_idx, std::size_t count, bool round,
                double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i vlo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lo_idx + i));
    const __m256i vhi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hi_idx + i));
    const __m256d plo = _mm256_i64gather_pd(prefix, vlo, 8);
    const __m256d phi = _mm256_i64gather_pd(prefix, vhi, 8);
    __m256d diff = _mm256_sub_pd(phi, plo);
    if (round) diff = RoundNonNegativeAvx2(diff);
    _mm256_storeu_pd(out + i, diff);
  }
  ScalarKernel(prefix, lo_idx + i, hi_idx + i, count - i, round, out + i);
}

#endif  // DPHIST_KERNELS_X86

/// -1 = no override; otherwise a KernelKind already clamped to support.
std::atomic<int> g_forced_kernel{-1};

KernelKind EnvKernel() {
  const char* env = std::getenv("DPHIST_FORCE_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    Result<KernelKind> parsed = ParseKernelKind(env);
    if (parsed.ok() && KernelSupported(parsed.value())) {
      return parsed.value();
    }
    // Unknown or unsupported request: serving with the best kernel beats
    // refusing to serve at all; the stats surface reports what ran.
  }
  return BestSupportedKernel();
}

}  // namespace

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kSse2:
      return "sse2";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<KernelKind> ParseKernelKind(const std::string& name) {
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "sse2") return KernelKind::kSse2;
  if (name == "avx2") return KernelKind::kAvx2;
  return Status::InvalidArgument("unknown kernel: " + name +
                                 " (want scalar, sse2, or avx2)");
}

bool KernelSupported(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kSse2:
      return DPHIST_KERNELS_X86 != 0;  // baseline on x86-64
    case KernelKind::kAvx2:
#if DPHIST_KERNELS_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

KernelKind BestSupportedKernel() {
  if (KernelSupported(KernelKind::kAvx2)) return KernelKind::kAvx2;
  if (KernelSupported(KernelKind::kSse2)) return KernelKind::kSse2;
  return KernelKind::kScalar;
}

KernelKind ActiveKernel() {
  const int forced = g_forced_kernel.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelKind>(forced);
  static const KernelKind from_env = EnvKernel();
  return from_env;
}

void ForceKernel(std::optional<KernelKind> kind) {
  if (!kind.has_value()) {
    g_forced_kernel.store(-1, std::memory_order_relaxed);
    return;
  }
  const KernelKind clamped =
      KernelSupported(*kind) ? *kind : BestSupportedKernel();
  g_forced_kernel.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

void PrefixDiffKernel(KernelKind kind, const double* prefix,
                      const std::int64_t* lo_idx, const std::int64_t* hi_idx,
                      std::size_t count, bool round, double* out) {
  switch (kind) {
#if DPHIST_KERNELS_X86
    case KernelKind::kAvx2:
      Avx2Kernel(prefix, lo_idx, hi_idx, count, round, out);
      return;
    case KernelKind::kSse2:
      Sse2Kernel(prefix, lo_idx, hi_idx, count, round, out);
      return;
#else
    case KernelKind::kAvx2:
    case KernelKind::kSse2:
#endif
    case KernelKind::kScalar:
      ScalarKernel(prefix, lo_idx, hi_idx, count, round, out);
      return;
  }
  ScalarKernel(prefix, lo_idx, hi_idx, count, round, out);
}

}  // namespace dphist::engine
