#include "engine/answer_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace dphist::engine {
namespace {

constexpr std::size_t kAlignment = 64;
constexpr std::size_t kDoublesPerLine = kAlignment / sizeof(double);

std::int64_t AlignUp(std::int64_t value) {
  const std::int64_t lanes = static_cast<std::int64_t>(kDoublesPerLine);
  return (value + lanes - 1) / lanes * lanes;
}

}  // namespace

AlignedDoubles::AlignedDoubles(std::size_t count) : size_(count) {
  // aligned_alloc requires the byte size to be a multiple of the
  // alignment; round up (the padding is never read).
  const std::size_t bytes =
      (count * sizeof(double) + kAlignment - 1) / kAlignment * kAlignment;
  double* raw = static_cast<double*>(
      std::aligned_alloc(kAlignment, bytes == 0 ? kAlignment : bytes));
  DPHIST_CHECK_MSG(raw != nullptr, "AnswerPlan allocation failed");
  data_.reset(raw);
}

void AlignedDoubles::Deleter::operator()(double* p) const { std::free(p); }

std::unique_ptr<const AnswerPlan> BuildAnswerPlan(
    const std::unique_ptr<RangeCountEstimator>* shards,
    std::int64_t shard_count, std::int64_t domain_size,
    std::int64_t shard_width) {
  if (shard_count < 1 || domain_size < 1 || shard_width < 1) return nullptr;
  auto plan = std::make_unique<AnswerPlan>();
  plan->domain_size = domain_size;
  plan->shard_width = shard_width;
  plan->shard_count = shard_count;
  plan->offsets.reserve(static_cast<std::size_t>(shard_count));

  // First pass: eligibility + total flattened size. Every shard must be
  // prefix-served, cover exactly its slice of the domain, and agree on
  // the rounding semantics — a mixed release (possible in principle for
  // H-bar, where consistency is detected per shard) keeps the walker.
  std::int64_t total = 0;
  bool round = false;
  for (std::int64_t s = 0; s < shard_count; ++s) {
    const PrefixAnswerView view = shards[s]->PrefixView();
    if (view.prefix == nullptr) return nullptr;
    const std::int64_t lo = s * shard_width;
    const std::int64_t expected_width =
        std::min(domain_size - 1, lo + shard_width - 1) - lo + 1;
    if (view.size != expected_width) return nullptr;
    if (s == 0) {
      round = view.round_final_answer;
    } else if (view.round_final_answer != round) {
      return nullptr;
    }
    plan->offsets.push_back(total);
    total = AlignUp(total + view.size + 1);
  }
  plan->round_answers = round;

  // Precompute the division-free shard locator. Power-of-two widths
  // (the common geometry: power-of-two domains over power-of-two shard
  // counts) reduce to a shift; everything else gets a 64.64 fixed-point
  // reciprocal whose exactness is verified at the extremes of every
  // quotient class — (position * magic) >> 64 is monotone in position,
  // so agreeing with position / width at each shard's first and last
  // position proves it agrees everywhere in between.
  if ((shard_width & (shard_width - 1)) == 0) {
    int shift = 0;
    while ((std::int64_t{1} << shift) < shard_width) ++shift;
    plan->shard_shift = shift;
  } else {
    const std::uint64_t d = static_cast<std::uint64_t>(shard_width);
    const std::uint64_t magic = ~std::uint64_t{0} / d + 1;
    const auto mul_shift = [magic](std::uint64_t n) {
      return static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(n) * magic) >> 64);
    };
    bool exact = true;
    for (std::int64_t q = 0; q < shard_count && exact; ++q) {
      const std::uint64_t first = static_cast<std::uint64_t>(q) * d;
      const std::uint64_t last = std::min(
          first + d - 1, static_cast<std::uint64_t>(domain_size - 1));
      exact = mul_shift(first) == static_cast<std::uint64_t>(q) &&
              mul_shift(last) == static_cast<std::uint64_t>(q);
    }
    if (exact) plan->shard_magic = magic;
  }

  // Second pass: copy each shard's table into its 64-byte-aligned row
  // and precompute the whole-shard answers (rounded with the kernels'
  // exact semantics — `x <= 0` clamps to +0.0, else round half away).
  plan->prefix = AlignedDoubles(static_cast<std::size_t>(total));
  plan->full_shard.reserve(static_cast<std::size_t>(shard_count));
  for (std::int64_t s = 0; s < shard_count; ++s) {
    const PrefixAnswerView view = shards[s]->PrefixView();
    std::memcpy(plan->prefix.data() + plan->offsets[static_cast<std::size_t>(s)],
                view.prefix,
                static_cast<std::size_t>(view.size + 1) * sizeof(double));
    double whole = view.prefix[view.size] - view.prefix[0];
    if (round) whole = whole <= 0.0 ? 0.0 : std::round(whole);
    plan->full_shard.push_back(whole);
  }
  return plan;
}

}  // namespace dphist::engine
