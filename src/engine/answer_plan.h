// Columnar answer state for the batch answer engine.
//
// Every strategy that answers a range as one prefix-sum difference (L~,
// wavelet, consistent H-bar) keeps a per-shard prefix table inside its
// estimator. The AnswerPlan flattens those tables — at publish time,
// once per release — into ONE contiguous 64-byte-aligned buffer with a
// side index of per-shard offsets, so a whole query batch can be
// answered by gather/subtract kernels (engine/kernels.h) without
// touching a single per-query abstraction: no virtual dispatch, no
// shard pointer chase, no per-answer branch on strategy.
//
// Layout (shard s covering width w_s positions):
//
//   prefix:  [ shard 0: w_0+1 doubles | pad | shard 1: w_1+1 | pad | … ]
//   offsets: [ 0, off_1, off_2, … ]        (side index, 64B-aligned rows)
//
// The answer for a range [lo, hi] inside shard s (shard-local
// coordinates) is prefix[offsets[s] + hi + 1] - prefix[offsets[s] + lo],
// optionally rounded to the nearest non-negative integer (Section 5.2
// semantics — exactly when the flattened strategy rounds its final
// answers; consistent H-bar never does, its rounding happened at node
// level during inference).
//
// Strategies that walk a decomposition per answer (H~, inconsistent
// H-bar) have no flattenable state: BuildAnswerPlan returns null and the
// snapshot keeps the existing walker path.

#ifndef DPHIST_ENGINE_ANSWER_PLAN_H_
#define DPHIST_ENGINE_ANSWER_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "estimators/range_engine.h"

namespace dphist::engine {

/// A 64-byte-aligned heap array of doubles (the flattened SoA storage).
class AlignedDoubles {
 public:
  AlignedDoubles() = default;
  /// Allocates `count` doubles at 64-byte alignment (uninitialized).
  explicit AlignedDoubles(std::size_t count);

  double* data() { return data_.get(); }
  const double* data() const { return data_.get(); }
  std::size_t size() const { return size_; }

 private:
  struct Deleter {
    void operator()(double* p) const;
  };
  std::unique_ptr<double[], Deleter> data_;
  std::size_t size_ = 0;
};

/// The flattened per-shard prefix tables of one published release.
/// Immutable after BuildAnswerPlan; owned by the Snapshot and shared by
/// every concurrent reader with no synchronization.
struct AnswerPlan {
  std::int64_t domain_size = 0;
  /// Positions per shard (the last shard may be narrower).
  std::int64_t shard_width = 0;
  std::int64_t shard_count = 0;
  /// True when the final per-shard answer is rounded to the nearest
  /// non-negative integer (L~/wavelet under Section 5.2 rounding).
  bool round_answers = false;
  /// Fast shard location, precomputed once at build time so the batch
  /// grouping pass never pays a hardware integer division (~25 cycles —
  /// the dominant per-query cost of the walker path it replaces):
  /// shard_shift >= 0 when shard_width is a power of two
  /// (shard = position >> shard_shift); otherwise shard_magic is a
  /// 64.64 fixed-point reciprocal (shard = (position * magic) >> 64),
  /// verified exact at every shard boundary during BuildAnswerPlan, or
  /// 0 in the (unreachable in practice) case verification fails and the
  /// engine falls back to plain division.
  int shard_shift = -1;
  std::uint64_t shard_magic = 0;
  /// offsets[s] = index of shard s's first prefix entry inside `prefix`;
  /// each shard's table starts on a 64-byte boundary.
  std::vector<std::int64_t> offsets;
  /// full_shard[s] = shard s's answer for its entire slice (rounded
  /// exactly as a kernel lane would round it). A query spanning shards
  /// covers every middle shard completely, so the engine folds these
  /// precomputed answers and only runs kernel lanes for the two partial
  /// end pieces — same bits, ~2 lanes per spanning query instead of one
  /// per shard touched.
  std::vector<double> full_shard;
  /// The flattened tables: shard s occupies
  /// prefix[offsets[s] .. offsets[s] + width_s] (width_s + 1 entries).
  AlignedDoubles prefix;
};

/// Flattens `shard_count` estimators' prefix tables into one plan.
/// Returns null when any shard cannot be served by prefix differences
/// (its PrefixView is empty) or the shards disagree on rounding — the
/// caller then keeps the decomposition-walker path. Runs at publish
/// time; cost is one memcpy of the release's leaf state.
std::unique_ptr<const AnswerPlan> BuildAnswerPlan(
    const std::unique_ptr<RangeCountEstimator>* shards,
    std::int64_t shard_count, std::int64_t domain_size,
    std::int64_t shard_width);

}  // namespace dphist::engine

#endif  // DPHIST_ENGINE_ANSWER_PLAN_H_
