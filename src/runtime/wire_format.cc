#include "runtime/wire_format.h"

#include <bit>
#include <cstring>

#include "runtime/session.h"

namespace dphist::runtime::wire {
namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

}  // namespace

void PutVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

void PutF64(std::string* out, double value) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>(bits & 0xFF);
    bits >>= 8;
  }
  out->append(bytes, 8);
}

bool PayloadReader::GetVarint(std::uint64_t* value) {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const auto byte = static_cast<unsigned char>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7E) != 0) return false;  // > 64 bits
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;
  }
  return false;  // truncated
}

bool PayloadReader::GetString(std::string* value) {
  std::uint64_t length = 0;
  if (!GetVarint(&length)) return false;
  if (length > data_.size() - pos_) return false;
  value->assign(data_.data() + pos_, static_cast<std::size_t>(length));
  pos_ += static_cast<std::size_t>(length);
  return true;
}

bool PayloadReader::GetF64(double* value) {
  if (data_.size() - pos_ < 8) return false;
  std::uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) {
    bits = (bits << 8) |
           static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
  }
  pos_ += 8;
  *value = std::bit_cast<double>(bits);
  return true;
}

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  out->push_back(static_cast<char>(type));
  PutVarint(out, payload.size());
  out->append(payload.data(), payload.size());
}

void EncodeQuery(std::uint64_t id, std::uint64_t expect_epoch,
                 const Interval* ranges, std::size_t count,
                 std::string* out) {
  std::string payload;
  PutVarint(&payload, id);
  PutVarint(&payload, expect_epoch);
  PutVarint(&payload, count);
  for (std::size_t i = 0; i < count; ++i) {
    PutVarint(&payload, static_cast<std::uint64_t>(ranges[i].lo()));
    PutVarint(&payload, static_cast<std::uint64_t>(ranges[i].hi()));
  }
  AppendFrame(FrameType::kQuery, payload, out);
}

void EncodeStatsRequest(std::uint64_t id, std::string* out) {
  std::string payload;
  PutVarint(&payload, id);
  AppendFrame(FrameType::kStats, payload, out);
}

void EncodeReplanRequest(std::uint64_t id, std::string* out) {
  std::string payload;
  PutVarint(&payload, id);
  AppendFrame(FrameType::kReplan, payload, out);
}

void EncodeGoodbye(std::string* out) {
  AppendFrame(FrameType::kGoodbye, {}, out);
}

void EncodeHello(std::uint64_t domain_size, std::uint64_t epoch,
                 std::string* out) {
  std::string payload;
  PutVarint(&payload, kProtocolVersion);
  PutVarint(&payload, domain_size);
  PutVarint(&payload, epoch);
  AppendFrame(FrameType::kHello, payload, out);
}

void EncodeAnswers(std::uint64_t id, std::uint64_t epoch,
                   const double* values, std::size_t count,
                   std::string* out) {
  std::string payload;
  payload.reserve(16 + count * 8);
  PutVarint(&payload, id);
  PutVarint(&payload, epoch);
  PutVarint(&payload, count);
  for (std::size_t i = 0; i < count; ++i) PutF64(&payload, values[i]);
  AppendFrame(FrameType::kAnswers, payload, out);
}

void EncodePlan(std::uint64_t epoch, std::string_view strategy,
                std::uint64_t shards, std::string_view reason,
                double predicted_mean_var, std::string* out) {
  std::string payload;
  PutVarint(&payload, epoch);
  PutString(&payload, strategy);
  PutVarint(&payload, shards);
  PutString(&payload, reason);
  PutF64(&payload, predicted_mean_var);
  AppendFrame(FrameType::kPlan, payload, out);
}

void EncodeStatsText(std::uint64_t id, std::string_view text,
                     std::string* out) {
  std::string payload;
  PutVarint(&payload, id);
  PutString(&payload, text);
  AppendFrame(FrameType::kStatsText, payload, out);
}

void EncodeError(std::uint64_t id, WireError code, std::string_view message,
                 std::string* out) {
  std::string payload;
  PutVarint(&payload, id);
  PutVarint(&payload, static_cast<std::uint64_t>(code));
  PutString(&payload, message);
  AppendFrame(FrameType::kError, payload, out);
}

void EncodeBye(std::uint64_t queries, std::uint64_t epoch, std::string* out) {
  std::string payload;
  PutVarint(&payload, queries);
  PutVarint(&payload, epoch);
  AppendFrame(FrameType::kBye, payload, out);
}

void EncodeNote(std::string_view text, std::string* out) {
  std::string payload;
  PutString(&payload, text);
  AppendFrame(FrameType::kNote, payload, out);
}

Result<std::size_t> DecodeFrame(std::string_view buffer, Frame* frame) {
  if (buffer.empty()) return std::size_t{0};
  const auto type_byte = static_cast<unsigned char>(buffer[0]);
  switch (static_cast<FrameType>(type_byte)) {
    case FrameType::kQuery:
    case FrameType::kStats:
    case FrameType::kReplan:
    case FrameType::kGoodbye:
    case FrameType::kHello:
    case FrameType::kAnswers:
    case FrameType::kPlan:
    case FrameType::kStatsText:
    case FrameType::kError:
    case FrameType::kBye:
    case FrameType::kNote:
      break;
    default:
      return Status::InvalidArgument("unknown frame type " +
                                     std::to_string(type_byte));
  }
  // Decode the length varint by hand so a partial varint reads as "need
  // more bytes", not an error.
  std::uint64_t length = 0;
  int shift = 0;
  std::size_t pos = 1;
  while (true) {
    if (pos >= buffer.size()) return std::size_t{0};
    const auto byte = static_cast<unsigned char>(buffer[pos++]);
    length |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 35) {
      // 5 continuation groups already exceed kMaxFramePayload — reject
      // before a hostile prefix makes us buffer forever.
      return Status::InvalidArgument("frame length varint too long");
    }
  }
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(length) +
                                   " bytes exceeds the limit");
  }
  if (buffer.size() - pos < length) return std::size_t{0};
  frame->type = static_cast<FrameType>(type_byte);
  frame->payload = buffer.substr(pos, static_cast<std::size_t>(length));
  return pos + static_cast<std::size_t>(length);
}

Status ParseQuery(std::string_view payload, std::int64_t domain_size,
                  QueryFrame* out) {
  PayloadReader reader(payload);
  std::uint64_t count = 0;
  if (!reader.GetVarint(&out->id) || !reader.GetVarint(&out->expect_epoch) ||
      !reader.GetVarint(&count)) {
    return Malformed("truncated QUERY header");
  }
  if (count > static_cast<std::uint64_t>(kMaxSessionBatch)) {
    return Status::InvalidArgument(
        "QUERY batch of " + std::to_string(count) + " ranges exceeds " +
        std::to_string(kMaxSessionBatch));
  }
  out->ranges.clear();
  out->ranges.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (!reader.GetVarint(&lo) || !reader.GetVarint(&hi)) {
      return Malformed("truncated QUERY range");
    }
    if (lo > hi || hi >= static_cast<std::uint64_t>(domain_size)) {
      return Status::OutOfRange("QUERY range [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "] out of bounds");
    }
    out->ranges.emplace_back(static_cast<std::int64_t>(lo),
                             static_cast<std::int64_t>(hi));
  }
  if (!reader.AtEnd()) return Malformed("trailing bytes after QUERY ranges");
  return Status::Ok();
}

Status ParseHello(std::string_view payload, HelloFrame* out) {
  PayloadReader reader(payload);
  if (!reader.GetVarint(&out->version) ||
      !reader.GetVarint(&out->domain_size) || !reader.GetVarint(&out->epoch) ||
      !reader.AtEnd()) {
    return Malformed("HELLO");
  }
  return Status::Ok();
}

Status ParseAnswers(std::string_view payload, AnswersFrame* out) {
  PayloadReader reader(payload);
  std::uint64_t count = 0;
  if (!reader.GetVarint(&out->id) || !reader.GetVarint(&out->epoch) ||
      !reader.GetVarint(&count)) {
    return Malformed("truncated ANSWERS header");
  }
  if (count > static_cast<std::uint64_t>(kMaxSessionBatch)) {
    return Malformed("ANSWERS count exceeds the batch cap");
  }
  out->values.resize(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.GetF64(&out->values[i])) {
      return Malformed("truncated ANSWERS values");
    }
  }
  if (!reader.AtEnd()) return Malformed("trailing bytes after ANSWERS");
  return Status::Ok();
}

Status ParsePlan(std::string_view payload, PlanFrame* out) {
  PayloadReader reader(payload);
  if (!reader.GetVarint(&out->epoch) || !reader.GetString(&out->strategy) ||
      !reader.GetVarint(&out->shards) || !reader.GetString(&out->reason) ||
      !reader.GetF64(&out->predicted_mean_var) || !reader.AtEnd()) {
    return Malformed("PLAN");
  }
  return Status::Ok();
}

Status ParseStatsText(std::string_view payload, StatsTextFrame* out) {
  PayloadReader reader(payload);
  if (!reader.GetVarint(&out->id) || !reader.GetString(&out->text) ||
      !reader.AtEnd()) {
    return Malformed("STATS_TEXT");
  }
  return Status::Ok();
}

Status ParseError(std::string_view payload, ErrorFrame* out) {
  PayloadReader reader(payload);
  if (!reader.GetVarint(&out->id) || !reader.GetVarint(&out->code) ||
      !reader.GetString(&out->message) || !reader.AtEnd()) {
    return Malformed("ERROR");
  }
  return Status::Ok();
}

Status ParseBye(std::string_view payload, ByeFrame* out) {
  PayloadReader reader(payload);
  if (!reader.GetVarint(&out->queries) || !reader.GetVarint(&out->epoch) ||
      !reader.AtEnd()) {
    return Malformed("BYE");
  }
  return Status::Ok();
}

Status ParseIdOnly(std::string_view payload, std::uint64_t* id) {
  PayloadReader reader(payload);
  if (!reader.GetVarint(id) || !reader.AtEnd()) {
    return Malformed("id-only request");
  }
  return Status::Ok();
}

Status ParseNote(std::string_view payload, std::string* text) {
  PayloadReader reader(payload);
  if (!reader.GetString(text) || !reader.AtEnd()) return Malformed("NOTE");
  return Status::Ok();
}

}  // namespace dphist::runtime::wire
