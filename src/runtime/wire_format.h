// The pipelined binary frame protocol spoken on the serving socket.
//
// The socket always opens in text mode: the server sends its "# serving
// ..." banner (preceded, when auth is on, by the auth exchange) and then
// waits. A client that wants the binary protocol sends the single magic
// byte kMagic (0xBF — never the first byte of a valid text command) as
// its first post-banner byte; the server answers with a HELLO frame and
// the connection speaks frames from then on. Any other first byte keeps
// the connection in the line-text protocol, byte-for-byte unchanged —
// REPLs and bash /dev/tcp scripts never know frames exist.
//
// Every frame is
//
//   type : 1 byte               (FrameType)
//   len  : unsigned LEB128      (payload length in bytes)
//   payload : len bytes
//
// Varints are unsigned LEB128 (7 bits per byte, low groups first, high
// bit = continuation). Floating-point answers are IEEE-754 binary64,
// little-endian. Strings are a varint byte length followed by the raw
// bytes (no terminator).
//
// Client -> server
//   QUERY  0x01  id v, expect_epoch v, count v, then count (lo v, hi v)
//                pairs. `id` is echoed in the reply so a pipelining
//                client can match answers to requests. `expect_epoch`
//                != 0 demands the batch be answered under exactly that
//                epoch: a mismatch (a swap landed) returns ERROR
//                (kEpochMismatch) instead of silently answering under a
//                release the client did not expect. 0 = any epoch; the
//                ANSWERS receipt carries whichever epoch served it.
//   STATS  0x02  id v — asks for the `stats` line; reply STATS_TEXT.
//   REPLAN 0x03  id v — manual replan; reply PLAN / NOTE / ERROR.
//   GOODBYE 0x04 empty — ends the session; the server flushes a BYE
//                frame (after draining any in-flight replan) and closes.
//
// Server -> client
//   HELLO  0x81  version v, domain_size v, epoch v — negotiation ack.
//   ANSWERS 0x82 id v, epoch v, count v, count f64-LE values — the
//                whole batch answered under the single `epoch` (the
//                binary form of the "# batch n=K epoch=E" receipt).
//   PLAN   0x83  epoch v, strategy s, shards v, reason s,
//                predicted_mean_var f64 — a republish announcement
//                ("# planned ..."), pushed as soon as the replan lands,
//                not only between requests.
//   STATS_TEXT 0x84  id v, text s — the stats line body.
//   ERROR  0x85  id v, code v, message s — request-scoped failure; the
//                session keeps serving (id 0 = not tied to a request).
//   BYE    0x86  queries v, epoch v — final receipt ("# served N
//                queries from epoch E"); the server closes after it.
//   NOTE   0x87  text s — a push comment (drift check kept the release,
//                a lifecycle replan failed) a text session would see as
//                a "# ..." line.
//
// Pipelining needs no protocol support: a client may write any number
// of QUERY frames before reading; the server executes frames in arrival
// order per connection and answers carry ids. Push frames (PLAN / NOTE)
// may appear between any two replies.

#ifndef DPHIST_RUNTIME_WIRE_FORMAT_H_
#define DPHIST_RUNTIME_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "domain/interval.h"

namespace dphist::runtime::wire {

/// First post-banner byte that switches a connection to frames. 0xBF is
/// not printable ASCII, so no text command can start with it.
inline constexpr unsigned char kMagic = 0xBF;

inline constexpr std::uint64_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. Large enough for a
/// kMaxSessionBatch query frame (~20 bytes/range worst case) and its
/// answers; anything bigger is a malformed or hostile length prefix.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 25;

enum class FrameType : unsigned char {
  // client -> server
  kQuery = 0x01,
  kStats = 0x02,
  kReplan = 0x03,
  kGoodbye = 0x04,
  // server -> client
  kHello = 0x81,
  kAnswers = 0x82,
  kPlan = 0x83,
  kStatsText = 0x84,
  kError = 0x85,
  kBye = 0x86,
  kNote = 0x87,
};

/// ERROR frame codes (a stable wire enum, deliberately narrower than
/// StatusCode).
enum class WireError : std::uint64_t {
  kBadRequest = 1,     // malformed frame payload / out-of-range ranges
  kEpochMismatch = 2,  // expect_epoch demanded an epoch no longer current
  kFailed = 3,         // the command executed and failed (e.g. replan)
};

// ---- primitive encoding ------------------------------------------------

/// Appends `value` as unsigned LEB128.
void PutVarint(std::string* out, std::uint64_t value);

/// Appends a varint byte length followed by the raw bytes.
void PutString(std::string* out, std::string_view s);

/// Appends IEEE-754 binary64, little-endian.
void PutF64(std::string* out, double value);

/// Cursor over one frame's payload bytes. Get* return false on
/// truncation/overflow and leave the cursor unusable (callers bail).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  bool GetVarint(std::uint64_t* value);
  bool GetString(std::string* value);
  bool GetF64(double* value);
  /// Everything has been consumed — a well-formed payload ends exactly
  /// where its fields do.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- frame encoding ----------------------------------------------------

/// Appends one complete frame (type + varint length + payload bytes).
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

void EncodeQuery(std::uint64_t id, std::uint64_t expect_epoch,
                 const Interval* ranges, std::size_t count, std::string* out);
void EncodeStatsRequest(std::uint64_t id, std::string* out);
void EncodeReplanRequest(std::uint64_t id, std::string* out);
void EncodeGoodbye(std::string* out);

void EncodeHello(std::uint64_t domain_size, std::uint64_t epoch,
                 std::string* out);
void EncodeAnswers(std::uint64_t id, std::uint64_t epoch,
                   const double* values, std::size_t count, std::string* out);
void EncodePlan(std::uint64_t epoch, std::string_view strategy,
                std::uint64_t shards, std::string_view reason,
                double predicted_mean_var, std::string* out);
void EncodeStatsText(std::uint64_t id, std::string_view text,
                     std::string* out);
void EncodeError(std::uint64_t id, WireError code, std::string_view message,
                 std::string* out);
void EncodeBye(std::uint64_t queries, std::uint64_t epoch, std::string* out);
void EncodeNote(std::string_view text, std::string* out);

// ---- frame decoding ----------------------------------------------------

/// One decoded frame header; `payload` points into the caller's buffer
/// and is valid only until that buffer changes.
struct Frame {
  FrameType type = FrameType::kGoodbye;
  std::string_view payload;
};

/// Tries to decode one frame from the front of `buffer`. Returns the
/// bytes consumed (header + payload) with `*frame` filled, 0 when the
/// buffer holds only a frame prefix (read more bytes and retry), or an
/// error Status for an unknown type / oversized or malformed length —
/// the connection is broken then and must close.
Result<std::size_t> DecodeFrame(std::string_view buffer, Frame* frame);

// ---- typed payload parsing ---------------------------------------------

struct QueryFrame {
  std::uint64_t id = 0;
  std::uint64_t expect_epoch = 0;  // 0 = any
  std::vector<Interval> ranges;
};
/// Validates count against kMaxSessionBatch and every range against
/// [0, domain_size).
Status ParseQuery(std::string_view payload, std::int64_t domain_size,
                  QueryFrame* out);

struct HelloFrame {
  std::uint64_t version = 0;
  std::uint64_t domain_size = 0;
  std::uint64_t epoch = 0;
};
Status ParseHello(std::string_view payload, HelloFrame* out);

struct AnswersFrame {
  std::uint64_t id = 0;
  std::uint64_t epoch = 0;
  std::vector<double> values;
};
Status ParseAnswers(std::string_view payload, AnswersFrame* out);

struct PlanFrame {
  std::uint64_t epoch = 0;
  std::string strategy;
  std::uint64_t shards = 0;
  std::string reason;
  double predicted_mean_var = 0.0;
};
Status ParsePlan(std::string_view payload, PlanFrame* out);

struct StatsTextFrame {
  std::uint64_t id = 0;
  std::string text;
};
Status ParseStatsText(std::string_view payload, StatsTextFrame* out);

struct ErrorFrame {
  std::uint64_t id = 0;
  std::uint64_t code = 0;
  std::string message;
};
Status ParseError(std::string_view payload, ErrorFrame* out);

struct ByeFrame {
  std::uint64_t queries = 0;
  std::uint64_t epoch = 0;
};
Status ParseBye(std::string_view payload, ByeFrame* out);

/// STATS / REPLAN requests share one shape: a lone id.
Status ParseIdOnly(std::string_view payload, std::uint64_t* id);

/// NOTE payload: a lone string.
Status ParseNote(std::string_view payload, std::string* text);

}  // namespace dphist::runtime::wire

#endif  // DPHIST_RUNTIME_WIRE_FORMAT_H_
