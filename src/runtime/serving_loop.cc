#include "runtime/serving_loop.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "engine/answer_engine.h"

namespace dphist::runtime {
namespace {

/// Answers `count` ranges over `threads` workers in contiguous slices;
/// each slice is one QueryBatch (single-epoch within itself). Returns
/// the epoch of the last non-empty slice and adds the run's cache hits
/// to `*cache_hits` (when non-null).
std::uint64_t AnswerParallel(QueryService& service, const Interval* ranges,
                             std::size_t count, std::int64_t threads,
                             double* out, std::uint64_t* cache_hits) {
  if (count == 0) return service.current_epoch();
  const std::int64_t total = static_cast<std::int64_t>(count);
  const std::int64_t slices = std::max<std::int64_t>(
      1, std::min(ResolveThreadCount(threads), total));
  if (slices == 1) return service.QueryBatch(ranges, count, out, cache_hits);
  const std::int64_t slice_width = (total + slices - 1) / slices;
  // Rounding can leave trailing slices empty (4 queries over 3 slices
  // of width 2 fills only slices 0 and 1), so anchor the summary epoch
  // on the last slice that actually answered queries — falling back to
  // current_epoch() could report an epoch newer than any slice ran
  // under when a swap lands between the fan-out and the summary.
  const std::int64_t last_nonempty = (total + slice_width - 1) / slice_width - 1;
  std::uint64_t last_epoch = 0;
  // Per-slice hit counters: slices run on different workers, so they
  // must not share one accumulator.
  std::vector<std::uint64_t> slice_hits(
      static_cast<std::size_t>(slices), 0);
  ParallelFor(slices, slices, [&](std::int64_t slice) {
    const std::int64_t begin = slice * slice_width;
    const std::int64_t end = std::min(total, begin + slice_width);
    if (begin >= end) return;
    const std::uint64_t epoch = service.QueryBatch(
        ranges + begin, static_cast<std::size_t>(end - begin), out + begin,
        &slice_hits[static_cast<std::size_t>(slice)]);
    if (slice == last_nonempty) last_epoch = epoch;
  });
  if (cache_hits != nullptr) {
    for (std::uint64_t h : slice_hits) *cache_hits += h;
  }
  return last_epoch;
}

}  // namespace

SessionExecutor::SessionExecutor(
    SessionWriter& writer, QueryService& service, EpochManager& manager,
    std::function<std::uint64_t()> session_write_errors)
    : writer_(writer),
      service_(service),
      manager_(manager),
      subscription_(manager),
      session_write_errors_(std::move(session_write_errors)) {}

void SessionExecutor::NoteAnswerEpoch(std::uint64_t epoch) {
  if (epoch != last_answer_epoch_) {
    last_answer_epoch_ = epoch;
    summary_.epochs_seen += 1;
  }
}

Status SessionExecutor::AnswerRun(const Interval* ranges, std::size_t count,
                                  std::int64_t threads) {
  // One validation up front covers every slice: the domain never changes
  // across epochs, so a swap mid-run cannot invalidate a range the
  // current snapshot accepts.
  Status valid = service_.ValidateBatch(ranges, count);
  if (!valid.ok()) return valid;
  answers_.resize(count);
  std::uint64_t hits = 0;
  summary_.last_epoch =
      AnswerParallel(service_, ranges, count, threads, answers_.data(), &hits);
  summary_.cache_hits += hits;
  NoteAnswerEpoch(summary_.last_epoch);
  writer_.Answers(answers_.data(), count);
  summary_.queries += count;
  return Status::Ok();
}

Result<std::uint64_t> SessionExecutor::AnswerBatch(
    const Interval* ranges, std::size_t count, std::vector<double>* answers) {
  answers->resize(count);
  std::uint64_t hits = 0;
  Result<std::uint64_t> answered =
      service_.TryQueryBatch(ranges, count, answers->data(), &hits);
  if (!answered.ok()) return answered.status();
  const std::uint64_t epoch = answered.value();
  summary_.commands += 1;
  summary_.queries += count;
  summary_.batches += 1;
  summary_.cache_hits += hits;
  summary_.last_epoch = epoch;
  NoteAnswerEpoch(epoch);
  return epoch;
}

Status SessionExecutor::Execute(const SessionCommand& command,
                                bool interactive) {
  summary_.commands += 1;
  switch (command.verb) {
    case SessionVerb::kQuery:
      return AnswerRun(command.ranges.data(), command.ranges.size(), 1);
    case SessionVerb::kBatch: {
      answers_.resize(command.ranges.size());
      std::uint64_t hits = 0;
      Result<std::uint64_t> answered =
          service_.TryQueryBatch(command.ranges.data(), command.ranges.size(),
                                 answers_.data(), &hits);
      if (!answered.ok()) return answered.status();
      const std::uint64_t epoch = answered.value();
      summary_.last_epoch = epoch;
      summary_.queries += command.ranges.size();
      summary_.batches += 1;
      summary_.cache_hits += hits;
      NoteAnswerEpoch(epoch);
      writer_.Answers(answers_.data(), command.ranges.size());
      // The receipt is what lets a transcript prove the whole batch
      // was served under one epoch; scripts keep the pre-runtime
      // answers-only format.
      if (interactive) {
        writer_.BatchReceipt(command.ranges.size(), epoch);
      }
      return Status::Ok();
    }
    case SessionVerb::kStats:
      writer_.Comment(StatsText());
      return Status::Ok();
    case SessionVerb::kReplan: {
      Result<ReplanOutcome> outcome = ManualReplan();
      if (!outcome.ok()) return outcome.status();
      ReportOutcome(outcome.value());
      return Status::Ok();
    }
    case SessionVerb::kQuit:
      return Status::Ok();
  }
  return Status::Internal("unreachable: unknown session verb");
}

Result<ReplanOutcome> SessionExecutor::ManualReplan() {
  // Pass our subscription so the broadcast skips this session — we
  // report the outcome directly; other sessions still get theirs.
  return manager_.ReplanNow(subscription_.id());
}

void SessionExecutor::PollAndReport() {
  for (const ReplanOutcome& outcome : PollAndTake()) {
    ReportOutcome(outcome);
  }
}

std::vector<ReplanOutcome> SessionExecutor::PollAndTake() {
  manager_.Poll();
  return manager_.TakeCompleted(subscription_.id());
}

std::vector<ReplanOutcome> SessionExecutor::TakeAnnouncements() {
  return manager_.TakeCompleted(subscription_.id());
}

std::string SessionExecutor::OutcomeComment(const ReplanOutcome& outcome) {
  std::ostringstream text;
  if (outcome.status.ok()) {
    text.precision(4);
    text << "drift check kept "
         << StrategyKindName(outcome.plan.options.strategy);
    if (outcome.drift_measured) {
      text << " measured=" << outcome.measured_drift;
    } else {
      // No ratio was ever computed: the current configuration is not
      // costable but the planner re-chose it. Printing "measured=0"
      // here would claim a measurement that never happened.
      text << " (planner re-chose current config; not costable)";
    }
  } else {
    // A failed lifecycle replan (budget refusal, infeasible plan) is
    // shared state, not this session's fault: render it as a comment.
    // "error:" stays reserved for the session's own commands — a
    // client must never see its transcript flagged because another
    // session's trigger was refused. (A failed `replan` COMMAND still
    // reports as "error:" through Execute's status return.)
    text << "replan failed (" << ReplanTriggerName(outcome.trigger)
         << "): " << outcome.status.ToString();
  }
  return text.str();
}

void SessionExecutor::ReportOutcome(const ReplanOutcome& outcome) {
  if (outcome.republished) {
    writer_.PlanNote(outcome.plan, outcome.epoch,
                     ReplanTriggerName(outcome.trigger));
    summary_.replans_reported += 1;
  } else {
    writer_.Comment(OutcomeComment(outcome));
  }
}

std::string SessionExecutor::StatsText() {
  std::shared_ptr<const Snapshot> snap = service_.snapshot();
  const AnswerCache::Stats cache = service_.cache_stats();
  const QueryService::SwapStats swaps = service_.swap_stats();
  const EpochManager::Stats lifecycle = manager_.stats();
  std::ostringstream text;
  text.precision(6);
  text << "stats epoch=" << (snap != nullptr ? snap->epoch() : 0)
       << " strategy="
       << (snap != nullptr ? StrategyKindName(snap->strategy()) : "none")
       << " shards=" << (snap != nullptr ? snap->shard_count() : 0)
       << " queries=" << service_.observed_query_count()
       << " publishes=" << swaps.publishes
       << " swap_evictions=" << swaps.total_swap_evictions
       << " replans=" << (lifecycle.manual + lifecycle.every +
                          lifecycle.drift)
       << " drift_checks=" << lifecycle.drift_checks
       << " epsilon_spent=" << lifecycle.epsilon_spent
       << " cache_hits=" << cache.hits << " cache_misses=" << cache.misses
       << " admission_rejects=" << cache.admission_rejects
       << " cache_size=" << service_.cache_size();
  // Batch answer engine: which kernel level is live and how much traffic
  // it has absorbed (totals across levels differ only when a force
  // override changed mid-run).
  const engine::EngineCounters engine_counters =
      engine::GlobalEngineCounters();
  text << " engine_kernel=" << engine::KernelKindName(engine::ActiveKernel())
       << " engine_batches=" << engine_counters.total_batches()
       << " engine_queries=" << engine_counters.total_queries()
       // Per-session tail: this session's own traffic, for multi-tenant
       // debugging (the fields above are server-global).
       << " session_queries=" << summary_.queries
       << " session_batches=" << summary_.batches
       << " session_cache_hits=" << summary_.cache_hits
       << " session_epochs=" << summary_.epochs_seen
       << " protocol=" << protocol_;
  if (session_write_errors_) {
    text << " write_errors=" << session_write_errors_();
  }
  return text.str();
}

void WriteServingBanner(SessionWriter& writer, const Snapshot& snapshot) {
  std::ostringstream banner;
  banner << "serving n=" << snapshot.domain_size()
         << " epoch=" << snapshot.epoch()
         << " strategy=" << StrategyKindName(snapshot.strategy())
         << " shards=" << snapshot.shard_count()
         << " eps=" << snapshot.epsilon();
  writer.Comment(banner.str());
}

Result<SessionSummary> RunStreamingSession(
    std::istream& in, SessionWriter& writer, QueryService& service,
    EpochManager& manager, const ServingLoopOptions& options) {
  std::shared_ptr<const Snapshot> snap = service.snapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "streaming session needs a published snapshot");
  }
  SessionReader reader(in, snap->domain_size());
  SessionExecutor executor(writer, service, manager,
                           options.session_write_errors);
  while (true) {
    Result<SessionCommand> command = reader.Next();
    if (!command.ok()) {
      // An interactive typo should not kill a server mid-session.
      executor.summary().parse_errors += 1;
      writer.Error(command.status());
      writer.Flush();
      continue;
    }
    if (command.value().verb == SessionVerb::kQuit) break;
    Status status = executor.Execute(command.value(), /*interactive=*/true);
    if (!status.ok()) writer.Error(status);
    executor.PollAndReport();
    writer.Flush();
  }
  // Let any in-flight asynchronous replan land so the transcript ends in
  // a deterministic state, then announce it.
  manager.Drain();
  executor.PollAndReport();
  writer.Flush();
  return executor.summary();
}

Result<SessionSummary> RunScriptedSession(
    const std::vector<SessionCommand>& script, SessionWriter& writer,
    QueryService& service, EpochManager& manager,
    const ServingLoopOptions& options) {
  if (service.snapshot() == nullptr) {
    return Status::FailedPrecondition(
        "scripted session needs a published snapshot");
  }
  SessionExecutor executor(writer, service, manager,
                           options.session_write_errors);
  std::vector<Interval> run;  // coalesced consecutive single-range queries
  std::size_t i = 0;
  while (i < script.size()) {
    const SessionVerb verb = script[i].verb;
    if (verb == SessionVerb::kQuery) {
      // Only single-range commands coalesce: a slice boundary can never
      // split one, so the fan-out keeps each command single-epoch. A
      // `qb` batch must NOT be merged — its contract is that all k
      // ranges answer under one snapshot, which one QueryBatch call
      // below guarantees and a re-sliced run would not.
      run.clear();
      std::size_t j = i;
      while (j < script.size() && script[j].verb == SessionVerb::kQuery) {
        run.insert(run.end(), script[j].ranges.begin(),
                   script[j].ranges.end());
        executor.summary().commands += 1;
        ++j;
      }
      Status status = executor.AnswerRun(run.data(), run.size(),
                                         options.threads);
      if (!status.ok()) return status;
      i = j;
    } else if (verb == SessionVerb::kQuit) {
      break;
    } else {
      Status status = executor.Execute(script[i], /*interactive=*/false);
      if (!status.ok()) return status;
      ++i;
    }
    executor.PollAndReport();
  }
  manager.Drain();
  executor.PollAndReport();
  return executor.summary();
}

}  // namespace dphist::runtime
