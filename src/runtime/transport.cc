#include "runtime/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "runtime/session.h"
#include "service/snapshot.h"

namespace dphist::runtime {
namespace {

/// The session protocol is strict request/response over tiny lines;
/// Nagle + delayed ACK would serialize every round trip at ~40 ms.
void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

// ----------------------------------------------------------- FdStreamBuf

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_, in_buf_, in_buf_);
  setp(out_buf_, out_buf_ + kBufSize);
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::recv(fd_, in_buf_, kBufSize, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) {
    // Clean FIN: the peer finished its script and hung up on purpose.
    orderly_eof_.store(true, std::memory_order_relaxed);
    return traits_type::eof();
  }
  if (n < 0) {
    // Socket error. ECONNRESET (peer vanished mid-conversation) is the
    // crash signature worth distinguishing from an orderly goodbye.
    if (errno == ECONNRESET) {
      peer_reset_.store(true, std::memory_order_relaxed);
    }
    return traits_type::eof();
  }
  setg(in_buf_, in_buf_, in_buf_ + static_cast<std::size_t>(n));
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::FlushOut() {
  const char* begin = pbase();
  const char* end = pptr();
  while (begin < end) {
    // MSG_NOSIGNAL: a client hanging up mid-answer must surface as a
    // stream error on this session, not SIGPIPE the whole server.
    ssize_t n = ::send(fd_, begin, static_cast<std::size_t>(end - begin),
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        peer_reset_.store(true, std::memory_order_relaxed);
      }
      // The pending bytes are gone; count the loss instead of silently
      // resetting the buffer — `stats` and the server receipt report it.
      write_errors_.fetch_add(1, std::memory_order_relaxed);
      setp(out_buf_, out_buf_ + kBufSize);
      return false;
    }
    begin += n;
  }
  setp(out_buf_, out_buf_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (pptr() == epptr() && !FlushOut()) return traits_type::eof();
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  *pptr() = traits_type::to_char_type(ch);
  pbump(1);
  return ch;
}

int FdStreamBuf::sync() { return FlushOut() ? 0 : -1; }

// ---------------------------------------------------------- SocketStream

SocketStream::SocketStream(int fd)
    : std::iostream(nullptr), buf_(fd), fd_(fd) {
  rdbuf(&buf_);
}

SocketStream::~SocketStream() {
  buf_.pubsync();
  if (fd_ >= 0) ::close(fd_);
}

void SocketStream::Shutdown() { ::shutdown(fd_, SHUT_RDWR); }

Result<std::unique_ptr<SocketStream>> ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = ErrnoStatus("connect");
    ::close(fd);
    return status;
  }
  SetNoDelay(fd);
  return std::make_unique<SocketStream>(fd);
}

// ---------------------------------------------------------- SocketServer

SocketServer::SocketServer(QueryService& service, EpochManager& manager,
                           const TransportOptions& options)
    : service_(service), manager_(manager), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = ErrnoStatus("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status status = ErrnoStatus("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    Status status = ErrnoStatus("getsockname");
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  accept_done_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

int SocketServer::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return port_;
}

void SocketServer::AcceptLoop() {
  std::int64_t accepted = 0;
  while (true) {
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
      if (options_.max_sessions > 0 && accepted >= options_.max_sessions) {
        break;
      }
      listen_fd = listen_fd_;
    }
    // Poll with a short timeout instead of blocking in accept forever:
    // Stop() only has to flip `stopping_` and wait one tick — no
    // close-while-accepting race.
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // Only a dead listener ends the loop; transient conditions
      // (EMFILE/ENFILE fd exhaustion, ENOMEM, aborted handshakes) must
      // not silently kill a long-lived server — the poll timeout above
      // already provides retry backoff.
      if (errno == EBADF || errno == EINVAL) break;
      continue;
    }
    SetNoDelay(fd);
    auto stream = std::make_shared<SocketStream>(fd);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;  // stream dtor closes the connection
      stats_.accepted += 1;
      // Prune expired entries so a long-lived server's bookkeeping
      // stays proportional to live connections.
      std::erase_if(active_streams_,
                    [](const std::weak_ptr<SocketStream>& weak) {
                      return weak.expired();
                    });
      active_streams_.push_back(stream);
      session_threads_.emplace_back(
          [this, stream] { ServeConnection(stream); });
    }
    ++accepted;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    accept_done_ = true;
  }
  accept_done_cv_.notify_all();
}

void SocketServer::ServeConnection(std::shared_ptr<SocketStream> stream) {
  SessionWriter writer(*stream);
  std::shared_ptr<const Snapshot> snapshot = service_.snapshot();
  SessionSummary summary;
  Status status = Status::Ok();
  if (snapshot == nullptr) {
    status = Status::FailedPrecondition(
        "socket session needs a published snapshot");
    writer.Error(status);
  } else {
    WriteServingBanner(writer, *snapshot);
    writer.Flush();
    // Bind the stats line's write_errors field to THIS connection's
    // stream, so a client can ask mid-session whether any of its
    // answers were lost to a failed flush.
    ServingLoopOptions loop = options_.loop;
    SocketStream* raw = stream.get();
    loop.session_write_errors = [raw] { return raw->write_errors(); };
    Result<SessionSummary> session =
        RunStreamingSession(*stream, writer, service_, manager_, loop);
    if (session.ok()) {
      summary = session.value();
      std::ostringstream text;
      text << "served " << summary.queries << " queries from epoch "
           << (summary.last_epoch != 0 ? summary.last_epoch
                                       : service_.current_epoch());
      writer.Comment(text.str());
    } else {
      status = session.status();
      writer.Error(status);
    }
  }
  writer.Flush();
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.completed += 1;
  stats_.queries += summary.queries;
  stats_.write_errors += stream->write_errors();
  if (stream->peer_reset()) stats_.peer_resets += 1;
  if (!status.ok()) stats_.session_errors += 1;
  // The stream (and its fd) dies with the last shared_ptr — here,
  // unless Stop() is concurrently holding one to shut it down.
}

void SocketServer::JoinAll() {
  // Wait for the accept loop to finish spawning sessions, then join
  // everything exactly once (swap-out makes concurrent callers safe).
  std::thread acceptor;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    accept_done_cv_.wait(lock, [this] { return accept_done_; });
    acceptor.swap(accept_thread_);
  }
  if (acceptor.joinable()) acceptor.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions.swap(session_threads_);
  }
  for (std::thread& session : sessions) session.join();
}

void SocketServer::Stop() {
  std::vector<std::shared_ptr<SocketStream>> to_shutdown;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const std::weak_ptr<SocketStream>& weak : active_streams_) {
      if (auto stream = weak.lock()) to_shutdown.push_back(stream);
    }
  }
  // Unblock session threads parked in a socket read; their sessions end
  // as if the client hung up.
  for (const auto& stream : to_shutdown) stream->Shutdown();
  JoinAll();
}

void SocketServer::WaitUntilStopped() { JoinAll(); }

SocketServer::Stats SocketServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dphist::runtime
