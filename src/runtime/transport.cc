#include "runtime/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dphist::runtime {
namespace {

/// The session protocol is strict request/response over tiny lines;
/// Nagle + delayed ACK would serialize every round trip at ~40 ms.
void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

// ----------------------------------------------------------- FdStreamBuf

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_, in_buf_, in_buf_);
  setp(out_buf_, out_buf_ + kBufSize);
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::recv(fd_, in_buf_, kBufSize, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) {
    // Clean FIN: the peer finished its script and hung up on purpose.
    orderly_eof_.store(true, std::memory_order_relaxed);
    return traits_type::eof();
  }
  if (n < 0) {
    // Socket error. ECONNRESET (peer vanished mid-conversation) is the
    // crash signature worth distinguishing from an orderly goodbye.
    if (errno == ECONNRESET) {
      peer_reset_.store(true, std::memory_order_relaxed);
    }
    return traits_type::eof();
  }
  setg(in_buf_, in_buf_, in_buf_ + static_cast<std::size_t>(n));
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::FlushOut() {
  const char* begin = pbase();
  const char* end = pptr();
  while (begin < end) {
    // MSG_NOSIGNAL: a client hanging up mid-answer must surface as a
    // stream error on this session, not SIGPIPE the whole server.
    ssize_t n = ::send(fd_, begin, static_cast<std::size_t>(end - begin),
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        peer_reset_.store(true, std::memory_order_relaxed);
      }
      // The pending bytes are gone; count the loss instead of silently
      // resetting the buffer — `stats` and the server receipt report it.
      write_errors_.fetch_add(1, std::memory_order_relaxed);
      setp(out_buf_, out_buf_ + kBufSize);
      return false;
    }
    begin += n;
  }
  setp(out_buf_, out_buf_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (pptr() == epptr() && !FlushOut()) return traits_type::eof();
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  *pptr() = traits_type::to_char_type(ch);
  pbump(1);
  return ch;
}

int FdStreamBuf::sync() { return FlushOut() ? 0 : -1; }

// ---------------------------------------------------------- SocketStream

SocketStream::SocketStream(int fd)
    : std::iostream(nullptr), buf_(fd), fd_(fd) {
  rdbuf(&buf_);
}

SocketStream::~SocketStream() {
  buf_.pubsync();
  if (fd_ >= 0) ::close(fd_);
}

void SocketStream::Shutdown() { ::shutdown(fd_, SHUT_RDWR); }

Result<std::unique_ptr<SocketStream>> ConnectTcp(const std::string& host,
                                                 int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = ErrnoStatus("connect");
    ::close(fd);
    return status;
  }
  SetNoDelay(fd);
  return std::make_unique<SocketStream>(fd);
}

Result<std::unique_ptr<SocketStream>> ConnectLoopback(int port) {
  return ConnectTcp("127.0.0.1", port);
}

// ---------------------------------------------------------- BinaryClient

Result<std::unique_ptr<BinaryClient>> BinaryClient::Connect(
    const std::string& host, int port, const std::string& auth_token) {
  Result<std::unique_ptr<SocketStream>> stream = ConnectTcp(host, port);
  if (!stream.ok()) return stream.status();
  std::unique_ptr<BinaryClient> client(
      new BinaryClient(std::move(stream).value()));
  if (!auth_token.empty()) {
    *client->stream_ << "auth " << auth_token << "\n";
    client->stream_->flush();
  }
  if (!std::getline(*client->stream_, client->banner_)) {
    return Status::IoError("connection closed before the banner");
  }
  if (!client->banner_.empty() && client->banner_.back() == '\r') {
    client->banner_.pop_back();
  }
  if (client->banner_.rfind("error:", 0) == 0) {
    // The server refused the session (bad token, nothing published yet)
    // with one text error line.
    return Status::FailedPrecondition(client->banner_);
  }
  client->stream_->put(static_cast<char>(wire::kMagic));
  client->stream_->flush();
  Result<OwnedFrame> first = client->ReadFrame();
  if (!first.ok()) return first.status();
  if (first.value().type != wire::FrameType::kHello) {
    return Status::InvalidArgument("expected a HELLO frame after the magic");
  }
  Status parsed = wire::ParseHello(first.value().payload, &client->hello_);
  if (!parsed.ok()) return parsed;
  if (client->hello_.version != wire::kProtocolVersion) {
    return Status::InvalidArgument(
        "server speaks protocol version " +
        std::to_string(client->hello_.version) + ", client speaks " +
        std::to_string(wire::kProtocolVersion));
  }
  return client;
}

void BinaryClient::SendQuery(std::uint64_t id, std::uint64_t expect_epoch,
                             const Interval* ranges, std::size_t count) {
  wire::EncodeQuery(id, expect_epoch, ranges, count, &sendbuf_);
}

void BinaryClient::SendStats(std::uint64_t id) {
  wire::EncodeStatsRequest(id, &sendbuf_);
}

void BinaryClient::SendReplan(std::uint64_t id) {
  wire::EncodeReplanRequest(id, &sendbuf_);
}

void BinaryClient::SendGoodbye() { wire::EncodeGoodbye(&sendbuf_); }

Status BinaryClient::Flush() {
  if (!sendbuf_.empty()) {
    stream_->write(sendbuf_.data(),
                   static_cast<std::streamsize>(sendbuf_.size()));
    sendbuf_.clear();
  }
  stream_->flush();
  if (!stream_->good() || stream_->write_errors() > 0) {
    return Status::IoError("failed to flush request bytes");
  }
  return Status::Ok();
}

Result<BinaryClient::OwnedFrame> BinaryClient::ReadFrame() {
  wire::Frame frame;
  while (true) {
    Result<std::size_t> consumed = wire::DecodeFrame(recvbuf_, &frame);
    if (!consumed.ok()) return consumed.status();
    if (consumed.value() > 0) {
      OwnedFrame owned;
      owned.type = frame.type;
      owned.payload.assign(frame.payload);
      recvbuf_.erase(0, consumed.value());
      return owned;
    }
    // Block for at least one byte, then take whatever else the stream
    // already buffered (pipelined replies arrive in clumps).
    char chunk[1 << 12];
    stream_->read(chunk, 1);
    if (stream_->gcount() <= 0) {
      return Status::IoError("connection closed mid-frame");
    }
    recvbuf_.append(chunk, 1);
    const std::streamsize extra =
        stream_->readsome(chunk, static_cast<std::streamsize>(sizeof(chunk)));
    if (extra > 0) recvbuf_.append(chunk, static_cast<std::size_t>(extra));
  }
}

Result<BinaryClient::OwnedFrame> BinaryClient::ReadReply(
    std::vector<OwnedFrame>* pushes) {
  while (true) {
    Result<OwnedFrame> frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    const wire::FrameType type = frame.value().type;
    if (type == wire::FrameType::kPlan || type == wire::FrameType::kNote) {
      if (pushes != nullptr) pushes->push_back(std::move(frame.value()));
      continue;
    }
    return frame;
  }
}

// ---------------------------------------------------------- SocketServer

SocketServer::SocketServer(QueryService& service, EpochManager& manager,
                           const TransportOptions& options)
    : service_(service), manager_(manager), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  MutexLock lock(mutex_);
  if (started_) return Status::FailedPrecondition("already started");
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bind_addr must be a numeric IPv4 address");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = ErrnoStatus("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status status = ErrnoStatus("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    Status status = ErrnoStatus("getsockname");
    ::close(fd);
    return status;
  }

  SessionPoolOptions pool_options;
  pool_options.workers = options_.workers;
  pool_options.auth_token = options_.auth_token;
  pool_options.on_session_done = [this](const SessionDone& done) {
    {
      MutexLock agg_lock(mutex_);
      stats_.completed += 1;
      stats_.queries += done.summary.queries;
      stats_.batches += done.summary.batches;
      stats_.cache_hits += done.summary.cache_hits;
      stats_.replans_announced += done.summary.replans_reported;
      stats_.write_errors += done.write_errors;
      if (done.peer_reset) stats_.peer_resets += 1;
      if (done.auth_failed) {
        stats_.auth_failures += 1;
      } else if (done.binary) {
        stats_.binary_sessions += 1;
      } else {
        stats_.text_sessions += 1;
      }
      if (!done.status.ok()) stats_.session_errors += 1;
    }
    state_cv_.NotifyAll();
  };
  pool_ = std::make_unique<SessionPool>(service_, manager_, pool_options);
  Status pool_status = pool_->Start();
  if (!pool_status.ok()) {
    ::close(fd);
    pool_.reset();
    return pool_status;
  }
  // From here on, completed replans wake the pool, which pushes the
  // announcement into every session's write buffer.
  manager_.SetAnnouncementNotifier(
      [pool = pool_.get()] { pool->NotifyAnnouncements(); });

  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  started_ = true;
  stopping_ = false;
  accept_done_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

int SocketServer::port() const {
  MutexLock lock(mutex_);
  return port_;
}

void SocketServer::AcceptLoop() {
  SessionPool* pool;
  {
    // One snapshot for the thread's lifetime: pool_ is set before this
    // thread is spawned and reset only after Stop() has joined it.
    MutexLock lock(mutex_);
    pool = pool_.get();
  }
  std::int64_t accepted = 0;
  while (true) {
    int listen_fd;
    {
      MutexLock lock(mutex_);
      if (stopping_) break;
      if (options_.max_sessions > 0 && accepted >= options_.max_sessions) {
        break;
      }
      listen_fd = listen_fd_;
    }
    // Poll with a short timeout instead of blocking in accept forever:
    // Stop() only has to flip `stopping_` and wait one tick — no
    // close-while-accepting race.
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // Only a dead listener ends the loop; transient conditions
      // (EMFILE/ENFILE fd exhaustion, ENOMEM, aborted handshakes) must
      // not silently kill a long-lived server — the poll timeout above
      // already provides retry backoff.
      if (errno == EBADF || errno == EINVAL) break;
      continue;
    }
    SetNoDelay(fd);
    {
      // Count before handing off: a session may complete before we get
      // the lock back, and completed must never exceed accepted.
      MutexLock lock(mutex_);
      if (stopping_) {
        ::close(fd);
        break;
      }
      stats_.accepted += 1;
    }
    if (!pool->Adopt(fd)) {
      // The pool is stopping; the fd is already closed.
      MutexLock lock(mutex_);
      stats_.accepted -= 1;
      break;
    }
    ++accepted;
  }
  {
    MutexLock lock(mutex_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    accept_done_ = true;
  }
  state_cv_.NotifyAll();
}

void SocketServer::Stop() {
  {
    MutexLock lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  std::thread acceptor;
  {
    MutexLock lock(mutex_);
    while (!accept_done_) state_cv_.Wait(mutex_);
    acceptor.swap(accept_thread_);
  }
  if (acceptor.joinable()) acceptor.join();
  // Unhook the push notifier before tearing the pool down so a replan
  // completing mid-stop never touches joined workers.
  manager_.SetAnnouncementNotifier(nullptr);
  SessionPool* pool;
  {
    MutexLock lock(mutex_);
    pool = pool_.get();
  }
  if (pool != nullptr) pool->Stop();  // idempotent; fires callbacks
  MutexLock lock(mutex_);
  while (stats_.completed < stats_.accepted) state_cv_.Wait(mutex_);
}

void SocketServer::WaitUntilStopped() {
  MutexLock lock(mutex_);
  while (!accept_done_ || stats_.completed < stats_.accepted) {
    state_cv_.Wait(mutex_);
  }
}

SocketServer::Stats SocketServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace dphist::runtime
