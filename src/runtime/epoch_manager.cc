#include "runtime/epoch_manager.h"

#include <iterator>
#include <limits>
#include <utility>

#include "common/check.h"
#include "planner/cost_model.h"
#include "planner/workload_profile.h"

namespace dphist::runtime {

const char* ReplanTriggerName(ReplanTrigger trigger) {
  switch (trigger) {
    case ReplanTrigger::kInitial:
      return "initial";
    case ReplanTrigger::kManual:
      return "manual";
    case ReplanTrigger::kEveryN:
      return "every";
    case ReplanTrigger::kDrift:
      return "drift";
    case ReplanTrigger::kRecover:
      return "recover";
  }
  return "unknown";
}

EpochManager::EpochManager(QueryService* service, Histogram data,
                           const EpochManagerOptions& options,
                           std::uint64_t seed)
    : service_(service),
      data_(std::move(data)),
      options_(options),
      cost_cache_(data_.size(), options_.planner.cost),
      accountant_(options.epsilon_budget > 0.0
                      ? options.epsilon_budget
                      : std::numeric_limits<double>::infinity()),
      seed_rng_(seed) {
  DPHIST_CHECK_MSG(service_ != nullptr, "EpochManager needs a service");
  stats_.epsilon_budget = options_.epsilon_budget;
  if (options_.async) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

EpochManager::~EpochManager() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t EpochManager::NextSeedLocked() {
  return static_cast<std::uint64_t>(
      seed_rng_.NextInt(0, std::numeric_limits<std::int64_t>::max()));
}

void EpochManager::AcquireBusy() {
  MutexLock lock(mutex_);
  while (busy_ || request_pending_) idle_cv_.Wait(mutex_);
  busy_ = true;
  busy_cap_.Acquire();
}

void EpochManager::ReleaseBusy() {
  {
    MutexLock lock(mutex_);
    busy_ = false;
    busy_cap_.Release();
  }
  idle_cv_.NotifyAll();
}

void EpochManager::RollbackCharge(bool logged, std::uint64_t wal_offset) {
  {
    MutexLock lock(mutex_);
    // Can only fail on an empty ledger, and we charged moments ago under
    // the busy token nobody else holds — a true programming error.
    Status rolled = accountant_.RollbackLast();
    DPHIST_CHECK_MSG(rolled.ok(), "rollback of a fresh charge failed");
    stats_.epsilon_spent = accountant_.spent();
    stats_.spend_rollbacks += 1;
  }
  if (logged && options_.store != nullptr) {
    // Best-effort: if the truncation itself fails, the WAL over-counts
    // the budget relative to memory — conservative (epsilon lost, never
    // minted), and the next Recover() simply charges it again.
    (void)options_.store->RollbackTo(wal_offset);
  }
}

Result<std::shared_ptr<const Snapshot>> EpochManager::ChargeAndPublish(
    const SnapshotOptions& options, const std::string& purpose,
    const planner::WorkloadProfile* profile) {
  // Gate, seed, and charge atomically under mutex_ (the busy token we
  // hold keeps any other spend path out between the gate and the
  // charge). The seed is drawn only on a successful charge, so the seed
  // stream advances exactly once per ledger entry — what lets Recover()
  // fast-forward it by the replayed ledger's length.
  std::uint64_t seed = 0;
  {
    MutexLock lock(mutex_);
    if (!accountant_.CanSpend(options.epsilon)) {
      stats_.budget_refusals += 1;
      return Status::FailedPrecondition(
          "refused: spending " + std::to_string(options.epsilon) +
          " would exceed the epsilon budget (remaining " +
          std::to_string(accountant_.remaining()) + ")");
    }
    seed = NextSeedLocked();
    Status spent = accountant_.Spend(options.epsilon, purpose);
    if (!spent.ok()) {
      // Unreachable after a passing gate, but a refused spend must stay
      // a refusal — not a CHECK-abort — on the server.
      stats_.budget_refusals += 1;
      return spent;
    }
    stats_.epsilon_spent = accountant_.spent();
  }

  // Durability point: once this append returns, a crash anywhere below
  // still counts the epsilon on replay.
  std::uint64_t wal_offset = 0;
  bool logged = false;
  if (options_.store != nullptr) {
    Result<std::uint64_t> offset =
        options_.store->AppendSpend(options.epsilon, purpose);
    if (!offset.ok()) {
      RollbackCharge(false, 0);
      return offset.status();
    }
    wal_offset = offset.value();
    logged = true;
  }

  Result<QueryService::PendingPublish> pending =
      service_->BuildForPublish(data_, options, seed);
  if (!pending.ok()) {
    RollbackCharge(logged, wal_offset);
    return pending.status();
  }

  if (options_.store != nullptr) {
    // Swap record before snapshot persist: if either fails, truncating
    // back to wal_offset removes both and no durable artifact of this
    // never-visible epoch remains (PersistSnapshot replaces the
    // snapshot file atomically as its last step).
    Status swap = options_.store->AppendEpochSwap(pending.value().epoch());
    if (!swap.ok()) {
      RollbackCharge(true, wal_offset);
      return swap;
    }
    Status persisted = options_.store->PersistSnapshot(
        *pending.value().snapshot(), profile);
    if (!persisted.ok()) {
      RollbackCharge(true, wal_offset);
      return persisted;
    }
  }
  return service_->CommitPublish(std::move(pending).value());
}

Result<ReplanOutcome> EpochManager::PublishInitial(
    const planner::WorkloadProfile* profile) {
  ReplanOutcome outcome;
  outcome.trigger = ReplanTrigger::kInitial;

  // Hold the busy token across gate -> charge -> publish. Without it a
  // concurrent replan could drain the budget between the CanSpend check
  // and the Spend (the TOCTOU that used to CHECK-abort a server whose
  // two sessions raced a replan against a publish).
  AcquireBusy();
  SnapshotOptions chosen = options_.base;
  const planner::WorkloadProfile* persist_profile = profile;
  std::optional<planner::WorkloadProfile> planning;
  if (options_.base.strategy == StrategyKind::kAuto) {
    planning = (profile != nullptr && !profile->empty())
                   ? *profile
                   : service_->ObservedWorkload(data_.size());
    if (planning->empty() && recovered_profile_.has_value()) {
      planning = *recovered_profile_;
    }
    if (planning->empty()) {
      planning = planner::WorkloadProfile::GeometricSweep(data_.size());
    }
    Result<planner::Plan> plan = planner::ChoosePlan(
        *planning, options_.base, options_.planner, &cost_cache_);
    if (!plan.ok()) {
      ReleaseBusy();
      return plan.status();
    }
    outcome.planned = true;
    outcome.plan = std::move(plan).value();
    chosen = outcome.plan.options;
    persist_profile = &*planning;
  }

  Result<std::shared_ptr<const Snapshot>> published =
      ChargeAndPublish(chosen, "publish (initial)", persist_profile);
  if (!published.ok()) {
    ReleaseBusy();
    return published.status();
  }

  outcome.republished = true;
  outcome.snapshot = published.value();
  outcome.epoch = outcome.snapshot->epoch();
  {
    MutexLock lock(mutex_);
    stats_.republishes += 1;
    SnapshotCostCacheStatsLocked();
    count_at_last_publish_ = service_->observed_query_count();
    count_at_last_drift_check_ = count_at_last_publish_;
  }
  ReleaseBusy();
  return outcome;
}

Result<ReplanOutcome> EpochManager::Recover() {
  if (options_.store == nullptr) {
    return Status::FailedPrecondition(
        "Recover needs a configured EpochStore (options.store)");
  }
  AcquireBusy();
  Result<storage::RecoveredState> recovered = options_.store->Recover();
  if (!recovered.ok()) {
    ReleaseBusy();
    return recovered.status();
  }
  storage::RecoveredState state = std::move(recovered).value();

  ReplanOutcome outcome;
  outcome.trigger = ReplanTrigger::kRecover;
  {
    MutexLock lock(mutex_);
    const std::size_t entries = state.ledger.size();
    Status imported = accountant_.ImportLedger(std::move(state.ledger));
    if (!imported.ok()) {
      ReleaseBusy();
      return imported;
    }
    stats_.epsilon_spent = accountant_.spent();
    // One publish seed was drawn per ledger entry in the crashed
    // process; fast-forward past them so post-restart publishes draw
    // the seeds they would have drawn had the process never died.
    for (std::size_t i = 0; i < entries; ++i) (void)NextSeedLocked();
  }

  if (state.snapshot != nullptr) {
    if (state.snapshot->domain_size() != data_.size()) {
      ReleaseBusy();
      return Status::IoError(
          "recovered snapshot covers a different domain (" +
          std::to_string(state.snapshot->domain_size()) + " positions vs " +
          std::to_string(data_.size()) + " in the data)");
    }
    Result<std::shared_ptr<const Snapshot>> installed =
        service_->PublishRestored(state.snapshot);
    if (!installed.ok()) {
      ReleaseBusy();
      return installed.status();
    }
    outcome.republished = true;
    outcome.snapshot = std::move(state.snapshot);
    outcome.epoch = outcome.snapshot->epoch();
  }
  recovered_profile_ = std::move(state.profile);

  {
    MutexLock lock(mutex_);
    stats_.recoveries += 1;
    if (outcome.republished) stats_.republishes += 1;
    count_at_last_publish_ = service_->observed_query_count();
    count_at_last_drift_check_ = count_at_last_publish_;
  }
  ReleaseBusy();
  return outcome;
}

ReplanOutcome EpochManager::ExecuteReplan(ReplanTrigger trigger) {
  ReplanOutcome outcome;
  outcome.trigger = trigger;

  planner::WorkloadProfile profile =
      service_->ObservedWorkload(data_.size());
  if (profile.empty() && recovered_profile_.has_value()) {
    // Fresh restart, no traffic yet: plan against the profile the
    // crashed process persisted rather than a blind prior.
    profile = *recovered_profile_;
  }
  if (profile.empty()) {
    profile = planner::WorkloadProfile::GeometricSweep(data_.size());
  }
  Result<planner::Plan> plan = planner::ChoosePlan(
      profile, options_.base, options_.planner, &cost_cache_);
  if (!plan.ok()) {
    outcome.status = plan.status();
    return outcome;
  }
  outcome.planned = true;
  outcome.plan = std::move(plan).value();

  if (trigger == ReplanTrigger::kDrift) {
    // Gate on measured drift: republish only when the current release's
    // predicted error exceeds the best candidate's by the configured
    // ratio. Keeping the release costs no privacy.
    std::shared_ptr<const Snapshot> current = service_->snapshot();
    if (current == nullptr) {
      // Traffic can trip the drift trigger before anything was ever
      // published (queries observed pre-PublishInitial); there is no
      // release to compare against, so refuse gracefully.
      outcome.status = Status::FailedPrecondition(
          "drift check before first publish");
      return outcome;
    }
    Result<planner::QueryCost> current_cost =
        cost_cache_.Evaluate(current->options(), profile);
    if (current_cost.ok() && outcome.plan.predicted_mean_variance > 0.0) {
      outcome.measured_drift = current_cost.value().mean_variance /
                               outcome.plan.predicted_mean_variance;
      outcome.drift_measured = true;
      if (outcome.measured_drift < 1.0 + options_.drift_ratio) {
        return outcome;  // still the right release
      }
    } else if (current->options().strategy == outcome.plan.options.strategy &&
               current->options().shards == outcome.plan.options.shards) {
      // The current config cannot be costed (e.g. analyzer width cap)
      // but the planner would choose it again — nothing to do.
      return outcome;
    }
  }

  Result<std::shared_ptr<const Snapshot>> published = ChargeAndPublish(
      outcome.plan.options,
      std::string("replan (") + ReplanTriggerName(trigger) + ")", &profile);
  if (!published.ok()) {
    outcome.status = published.status();
    return outcome;
  }
  outcome.republished = true;
  outcome.snapshot = published.value();
  outcome.epoch = outcome.snapshot->epoch();
  return outcome;
}

void EpochManager::SnapshotCostCacheStatsLocked() {
  // Safe without further synchronization: the cache is only mutated by
  // the busy-token holder, which is the thread calling this.
  const planner::IncrementalCostModel::Stats& cache = cost_cache_.stats();
  stats_.cost_evaluations = cache.evaluations;
  stats_.cost_lengths_costed = cache.lengths_costed;
  stats_.cost_lengths_reused = cache.lengths_reused;
}

void EpochManager::RecordLocked(const ReplanOutcome& outcome,
                                SubscriberId skip) {
  SnapshotCostCacheStatsLocked();
  if (outcome.republished) {
    stats_.republishes += 1;
    switch (outcome.trigger) {
      case ReplanTrigger::kManual:
        stats_.manual += 1;
        break;
      case ReplanTrigger::kEveryN:
        stats_.every += 1;
        break;
      case ReplanTrigger::kDrift:
        stats_.drift += 1;
        break;
      case ReplanTrigger::kInitial:
      case ReplanTrigger::kRecover:
        break;
    }
  } else if (outcome.status.ok()) {
    stats_.drift_checks += 1;
  } else if (outcome.status.code() != StatusCode::kFailedPrecondition) {
    // Budget refusals were already counted at the gate.
    stats_.failures += 1;
  }
  // Re-anchor both triggers at the traffic level the decision saw, so a
  // refusal or no-drift verdict backs off instead of refiring every
  // Poll.
  count_at_last_publish_ = service_->observed_query_count();
  count_at_last_drift_check_ = count_at_last_publish_;
  // Broadcast: every subscribed session gets its own copy, so one
  // session draining its queue never consumes another's announcement.
  for (auto& [id, queue] : subscribers_) {
    if (id == skip) continue;
    if (queue.size() >= kMaxQueuedPerSubscriber) {
      queue.pop_front();
      stats_.announcements_dropped += 1;
    }
    queue.push_back(outcome);
  }
}

bool EpochManager::PollTriggerLocked(ReplanTrigger* trigger) {
  if (busy_ || request_pending_ || stop_) return false;
  const std::uint64_t count = service_->observed_query_count();
  if (options_.replan_every > 0 &&
      count - count_at_last_publish_ >=
          static_cast<std::uint64_t>(options_.replan_every)) {
    *trigger = ReplanTrigger::kEveryN;
    return true;
  }
  if (options_.drift_ratio > 0.0 &&
      count - count_at_last_drift_check_ >=
          static_cast<std::uint64_t>(
              std::max<std::int64_t>(1, options_.drift_check_every))) {
    *trigger = ReplanTrigger::kDrift;
    return true;
  }
  return false;
}

bool EpochManager::TryStartSyncReplan(ReplanTrigger* trigger) {
  MutexLock lock(mutex_);
  if (!PollTriggerLocked(trigger)) return false;
  busy_ = true;
  busy_cap_.Acquire();
  return true;
}

bool EpochManager::Poll() {
  if (options_.async) {
    ReplanTrigger trigger;
    {
      MutexLock lock(mutex_);
      if (!PollTriggerLocked(&trigger)) return false;
      request_pending_ = true;
      request_trigger_ = trigger;
    }
    work_cv_.NotifyOne();
    return true;
  }
  ReplanTrigger trigger;
  if (!TryStartSyncReplan(&trigger)) return false;
  ReplanOutcome outcome = ExecuteReplan(trigger);
  std::function<void()> notify;
  {
    MutexLock lock(mutex_);
    RecordLocked(outcome);
    busy_ = false;
    busy_cap_.Release();
    notify = announcement_notifier_;
    if (notify) notifier_calls_in_flight_ += 1;
  }
  idle_cv_.NotifyAll();
  if (notify) {
    notify();
    FinishNotifierCall();
  }
  return true;
}

Result<ReplanOutcome> EpochManager::ReplanNow(SubscriberId reporter) {
  AcquireBusy();
  ReplanOutcome outcome = ExecuteReplan(ReplanTrigger::kManual);
  std::function<void()> notify;
  {
    MutexLock lock(mutex_);
    // The caller reports this outcome directly, so its own subscription
    // is skipped; every other session still gets the announcement.
    RecordLocked(outcome, /*skip=*/reporter);
    busy_ = false;
    busy_cap_.Release();
    notify = announcement_notifier_;
    if (notify) notifier_calls_in_flight_ += 1;
  }
  idle_cv_.NotifyAll();
  if (notify) {
    notify();
    FinishNotifierCall();
  }
  if (!outcome.status.ok()) return outcome.status;
  return outcome;
}

void EpochManager::Drain() {
  MutexLock lock(mutex_);
  while (busy_ || request_pending_) idle_cv_.Wait(mutex_);
}

EpochManager::SubscriberId EpochManager::Subscribe() {
  MutexLock lock(mutex_);
  const SubscriberId id = next_subscriber_++;
  subscribers_[id];  // creates the empty queue
  return id;
}

void EpochManager::Unsubscribe(SubscriberId id) {
  MutexLock lock(mutex_);
  subscribers_.erase(id);
}

std::vector<ReplanOutcome> EpochManager::TakeCompleted(SubscriberId id) {
  MutexLock lock(mutex_);
  auto it = subscribers_.find(id);
  if (it == subscribers_.end()) return {};
  std::vector<ReplanOutcome> taken(
      std::make_move_iterator(it->second.begin()),
      std::make_move_iterator(it->second.end()));
  it->second.clear();
  return taken;
}

void EpochManager::SetAnnouncementNotifier(std::function<void()> notifier) {
  MutexLock lock(mutex_);
  // Every call site copies the notifier and bumps the in-flight count
  // under mutex_ before invoking it unlocked, so waiting for zero here
  // means the OLD callback is not mid-call on any thread — the caller
  // may tear down whatever it captures the moment we return.
  while (notifier_calls_in_flight_ != 0) idle_cv_.Wait(mutex_);
  announcement_notifier_ = std::move(notifier);
}

void EpochManager::FinishNotifierCall() {
  {
    MutexLock lock(mutex_);
    notifier_calls_in_flight_ -= 1;
  }
  idle_cv_.NotifyAll();
}

EpochManager::Stats EpochManager::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void EpochManager::WorkerLoop() {
  mutex_.Lock();
  while (true) {
    while (!stop_ && !request_pending_) work_cv_.Wait(mutex_);
    if (stop_) break;
    const ReplanTrigger trigger = request_trigger_;
    request_pending_ = false;
    busy_ = true;
    busy_cap_.Acquire();
    mutex_.Unlock();
    ReplanOutcome outcome = ExecuteReplan(trigger);
    mutex_.Lock();
    RecordLocked(outcome);
    busy_ = false;
    busy_cap_.Release();
    std::function<void()> notify = announcement_notifier_;
    if (notify) notifier_calls_in_flight_ += 1;
    mutex_.Unlock();
    idle_cv_.NotifyAll();
    if (notify) {
      notify();
      FinishNotifierCall();
    }
    mutex_.Lock();
  }
  mutex_.Unlock();
}

}  // namespace dphist::runtime
