#include "runtime/epoch_manager.h"

#include <iterator>
#include <limits>
#include <utility>

#include "common/check.h"
#include "planner/cost_model.h"
#include "planner/workload_profile.h"

namespace dphist::runtime {

const char* ReplanTriggerName(ReplanTrigger trigger) {
  switch (trigger) {
    case ReplanTrigger::kInitial:
      return "initial";
    case ReplanTrigger::kManual:
      return "manual";
    case ReplanTrigger::kEveryN:
      return "every";
    case ReplanTrigger::kDrift:
      return "drift";
  }
  return "unknown";
}

EpochManager::EpochManager(QueryService* service, Histogram data,
                           const EpochManagerOptions& options,
                           std::uint64_t seed)
    : service_(service),
      data_(std::move(data)),
      options_(options),
      cost_cache_(data_.size(), options_.planner.cost),
      accountant_(options.epsilon_budget > 0.0
                      ? options.epsilon_budget
                      : std::numeric_limits<double>::infinity()),
      seed_rng_(seed) {
  DPHIST_CHECK_MSG(service_ != nullptr, "EpochManager needs a service");
  stats_.epsilon_budget = options_.epsilon_budget;
  if (options_.async) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

EpochManager::~EpochManager() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t EpochManager::NextSeedLocked() {
  return static_cast<std::uint64_t>(
      seed_rng_.NextInt(0, std::numeric_limits<std::int64_t>::max()));
}

void EpochManager::AcquireBusy() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return !busy_ && !request_pending_; });
  busy_ = true;
}

void EpochManager::ReleaseBusy() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    busy_ = false;
  }
  idle_cv_.notify_all();
}

Result<ReplanOutcome> EpochManager::PublishInitial(
    const planner::WorkloadProfile* profile) {
  ReplanOutcome outcome;
  outcome.trigger = ReplanTrigger::kInitial;

  // Hold the busy token across gate -> publish -> spend. Without it a
  // concurrent replan could drain the budget between the CanSpend check
  // and the Spend below (the TOCTOU that used to CHECK-abort a server
  // whose two sessions raced a replan against a publish).
  AcquireBusy();
  bool refused = false;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accountant_.CanSpend(options_.base.epsilon)) {
      stats_.budget_refusals += 1;
      refused = true;
    } else {
      seed = NextSeedLocked();
    }
  }
  if (refused) {
    ReleaseBusy();
    return Status::FailedPrecondition(
        "initial publish would exceed the epsilon budget");
  }

  Result<std::shared_ptr<const Snapshot>> published =
      Status::Internal("unset");
  if (options_.base.strategy == StrategyKind::kAuto) {
    planner::WorkloadProfile planning =
        (profile != nullptr && !profile->empty())
            ? *profile
            : service_->ObservedWorkload(data_.size());
    if (planning.empty()) {
      planning = planner::WorkloadProfile::GeometricSweep(data_.size());
    }
    Result<planner::Plan> plan = planner::ChoosePlan(
        planning, options_.base, options_.planner, &cost_cache_);
    if (!plan.ok()) {
      ReleaseBusy();
      return plan.status();
    }
    outcome.planned = true;
    outcome.plan = std::move(plan).value();
    published = service_->PublishFromPlan(data_, outcome.plan, seed);
  } else {
    published = service_->Publish(data_, options_.base, seed);
  }
  if (!published.ok()) {
    ReleaseBusy();
    return published.status();
  }

  outcome.republished = true;
  outcome.snapshot = published.value();
  outcome.epoch = outcome.snapshot->epoch();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Unreachable failure: every spend path holds the busy token across
    // its gate, so the budget checked above cannot have shrunk.
    Status spent = accountant_.Spend(
        options_.base.epsilon,
        std::string("publish epoch ") + std::to_string(outcome.epoch));
    DPHIST_CHECK_MSG(spent.ok(), "accountant refused a gated spend");
    stats_.republishes += 1;
    stats_.epsilon_spent = accountant_.spent();
    SnapshotCostCacheStatsLocked();
    count_at_last_publish_ = service_->observed_query_count();
    count_at_last_drift_check_ = count_at_last_publish_;
  }
  ReleaseBusy();
  return outcome;
}

ReplanOutcome EpochManager::ExecuteReplan(ReplanTrigger trigger) {
  ReplanOutcome outcome;
  outcome.trigger = trigger;

  planner::WorkloadProfile profile =
      service_->ObservedWorkload(data_.size());
  if (profile.empty()) {
    profile = planner::WorkloadProfile::GeometricSweep(data_.size());
  }
  Result<planner::Plan> plan = planner::ChoosePlan(
      profile, options_.base, options_.planner, &cost_cache_);
  if (!plan.ok()) {
    outcome.status = plan.status();
    return outcome;
  }
  outcome.planned = true;
  outcome.plan = std::move(plan).value();

  if (trigger == ReplanTrigger::kDrift) {
    // Gate on measured drift: republish only when the current release's
    // predicted error exceeds the best candidate's by the configured
    // ratio. Keeping the release costs no privacy.
    std::shared_ptr<const Snapshot> current = service_->snapshot();
    if (current == nullptr) {
      // Traffic can trip the drift trigger before anything was ever
      // published (queries observed pre-PublishInitial); there is no
      // release to compare against, so refuse gracefully.
      outcome.status = Status::FailedPrecondition(
          "drift check before first publish");
      return outcome;
    }
    Result<planner::QueryCost> current_cost =
        cost_cache_.Evaluate(current->options(), profile);
    if (current_cost.ok() && outcome.plan.predicted_mean_variance > 0.0) {
      outcome.measured_drift = current_cost.value().mean_variance /
                               outcome.plan.predicted_mean_variance;
      outcome.drift_measured = true;
      if (outcome.measured_drift < 1.0 + options_.drift_ratio) {
        return outcome;  // still the right release
      }
    } else if (current->options().strategy == outcome.plan.options.strategy &&
               current->options().shards == outcome.plan.options.shards) {
      // The current config cannot be costed (e.g. analyzer width cap)
      // but the planner would choose it again — nothing to do.
      return outcome;
    }
  }

  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accountant_.CanSpend(options_.base.epsilon)) {
      stats_.budget_refusals += 1;
      outcome.status = Status::FailedPrecondition(
          "replan refused: epsilon budget exhausted");
      return outcome;
    }
    seed = NextSeedLocked();
  }

  Result<std::shared_ptr<const Snapshot>> published =
      service_->PublishFromPlan(data_, outcome.plan, seed);
  if (!published.ok()) {
    outcome.status = published.status();
    return outcome;
  }
  outcome.republished = true;
  outcome.snapshot = published.value();
  outcome.epoch = outcome.snapshot->epoch();
  std::lock_guard<std::mutex> lock(mutex_);
  Status spent = accountant_.Spend(
      options_.base.epsilon, std::string("replan (") +
                                 ReplanTriggerName(trigger) + ") epoch " +
                                 std::to_string(outcome.epoch));
  DPHIST_CHECK_MSG(spent.ok(), "accountant refused a gated spend");
  stats_.epsilon_spent = accountant_.spent();
  return outcome;
}

void EpochManager::SnapshotCostCacheStatsLocked() {
  // Safe without further synchronization: the cache is only mutated by
  // the busy-token holder, which is the thread calling this.
  const planner::IncrementalCostModel::Stats& cache = cost_cache_.stats();
  stats_.cost_evaluations = cache.evaluations;
  stats_.cost_lengths_costed = cache.lengths_costed;
  stats_.cost_lengths_reused = cache.lengths_reused;
}

void EpochManager::RecordLocked(const ReplanOutcome& outcome,
                                SubscriberId skip) {
  SnapshotCostCacheStatsLocked();
  if (outcome.republished) {
    stats_.republishes += 1;
    switch (outcome.trigger) {
      case ReplanTrigger::kManual:
        stats_.manual += 1;
        break;
      case ReplanTrigger::kEveryN:
        stats_.every += 1;
        break;
      case ReplanTrigger::kDrift:
        stats_.drift += 1;
        break;
      case ReplanTrigger::kInitial:
        break;
    }
  } else if (outcome.status.ok()) {
    stats_.drift_checks += 1;
  } else if (outcome.status.code() != StatusCode::kFailedPrecondition) {
    // Budget refusals were already counted at the gate.
    stats_.failures += 1;
  }
  // Re-anchor both triggers at the traffic level the decision saw, so a
  // refusal or no-drift verdict backs off instead of refiring every
  // Poll.
  count_at_last_publish_ = service_->observed_query_count();
  count_at_last_drift_check_ = count_at_last_publish_;
  // Broadcast: every subscribed session gets its own copy, so one
  // session draining its queue never consumes another's announcement.
  for (auto& [id, queue] : subscribers_) {
    if (id == skip) continue;
    if (queue.size() >= kMaxQueuedPerSubscriber) {
      queue.pop_front();
      stats_.announcements_dropped += 1;
    }
    queue.push_back(outcome);
  }
}

bool EpochManager::Poll() {
  ReplanTrigger trigger;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (busy_ || request_pending_ || stop_) return false;
    const std::uint64_t count = service_->observed_query_count();
    if (options_.replan_every > 0 &&
        count - count_at_last_publish_ >=
            static_cast<std::uint64_t>(options_.replan_every)) {
      trigger = ReplanTrigger::kEveryN;
    } else if (options_.drift_ratio > 0.0 &&
               count - count_at_last_drift_check_ >=
                   static_cast<std::uint64_t>(
                       std::max<std::int64_t>(1,
                                              options_.drift_check_every))) {
      trigger = ReplanTrigger::kDrift;
    } else {
      return false;
    }
    if (options_.async) {
      request_pending_ = true;
      request_trigger_ = trigger;
    } else {
      busy_ = true;
    }
  }
  if (options_.async) {
    work_cv_.notify_one();
    return true;
  }
  ReplanOutcome outcome = ExecuteReplan(trigger);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RecordLocked(outcome);
    busy_ = false;
  }
  idle_cv_.notify_all();
  return true;
}

Result<ReplanOutcome> EpochManager::ReplanNow(SubscriberId reporter) {
  AcquireBusy();
  ReplanOutcome outcome = ExecuteReplan(ReplanTrigger::kManual);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The caller reports this outcome directly, so its own subscription
    // is skipped; every other session still gets the announcement.
    RecordLocked(outcome, /*skip=*/reporter);
  }
  ReleaseBusy();
  if (!outcome.status.ok()) return outcome.status;
  return outcome;
}

void EpochManager::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return !busy_ && !request_pending_; });
}

EpochManager::SubscriberId EpochManager::Subscribe() {
  std::lock_guard<std::mutex> lock(mutex_);
  const SubscriberId id = next_subscriber_++;
  subscribers_[id];  // creates the empty queue
  return id;
}

void EpochManager::Unsubscribe(SubscriberId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.erase(id);
}

std::vector<ReplanOutcome> EpochManager::TakeCompleted(SubscriberId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = subscribers_.find(id);
  if (it == subscribers_.end()) return {};
  std::vector<ReplanOutcome> taken(
      std::make_move_iterator(it->second.begin()),
      std::make_move_iterator(it->second.end()));
  it->second.clear();
  return taken;
}

EpochManager::Stats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void EpochManager::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || request_pending_; });
    if (stop_) return;
    const ReplanTrigger trigger = request_trigger_;
    request_pending_ = false;
    busy_ = true;
    lock.unlock();
    ReplanOutcome outcome = ExecuteReplan(trigger);
    lock.lock();
    RecordLocked(outcome);
    busy_ = false;
    idle_cv_.notify_all();
  }
}

}  // namespace dphist::runtime
