// EpochManager: the publish lifecycle of a long-lived QueryService.
//
// PR 3 left the planner an offline advisor: `dphist serve` planned once,
// published once, and exited. The EpochManager closes the loop — it
// watches the service's observed-traffic profile and republishes when a
// trigger says the current release no longer fits the traffic:
//
//   every-N   an automatic republish every `replan_every` observed
//             queries (unconditional — a standing re-publication
//             schedule);
//   drift     every `drift_check_every` queries the manager re-runs
//             ChoosePlan on the exported profile and compares the
//             current release's predicted MSE against the best
//             candidate's; a ratio of at least 1 + drift_ratio
//             republishes, anything less is recorded as a drift check
//             and costs no privacy;
//   manual    ReplanNow() — the REPL `replan` command.
//
// A replan runs off the serving thread (options.async): the worker
// exports the profile, runs ChoosePlan, builds the snapshot, and the
// QueryService swaps it in atomically — readers never block, and every
// in-flight batch still finishes under the epoch it started on. The
// completed outcome is queued for the serving loop to report
// (TakeCompleted), so transcripts show each "# planned ..." line.
//
// Privacy: every republish is a fresh interaction with the private data
// and spends a fresh options.base.epsilon (sequential composition across
// epochs — see README "Streaming serving"). The manager tracks the
// cumulative spend through a PrivacyAccountant; with a finite
// epsilon_budget it refuses replans that would overspend instead of
// silently degrading the guarantee.

#ifndef DPHIST_RUNTIME_EPOCH_MANAGER_H_
#define DPHIST_RUNTIME_EPOCH_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "domain/histogram.h"
#include "mechanism/privacy_accountant.h"
#include "planner/planner.h"
#include "service/query_service.h"

namespace dphist::runtime {

/// Why a republish (or drift check) happened.
enum class ReplanTrigger { kInitial, kManual, kEveryN, kDrift };

/// Short stable name ("initial", "manual", "every", "drift").
const char* ReplanTriggerName(ReplanTrigger trigger);

struct EpochManagerOptions {
  /// Per-release knobs; strategy may be kAuto (planned per publish) or
  /// concrete (the initial publish skips planning; replans still plan).
  SnapshotOptions base;
  /// Candidate enumeration for ChoosePlan.
  planner::PlannerOptions planner;
  /// Republish after this many observed queries since the last publish;
  /// 0 disables the every-N trigger.
  std::int64_t replan_every = 0;
  /// Republish when predicted-MSE(current) / predicted-MSE(best) is at
  /// least 1 + drift_ratio; 0 disables the drift trigger.
  double drift_ratio = 0.0;
  /// Observed queries between drift evaluations.
  std::int64_t drift_check_every = 256;
  /// Run triggered replans on the manager's worker thread (readers and
  /// the serving loop never wait on a build). False makes every replan
  /// synchronous — deterministic transcripts for scripted sessions.
  bool async = true;
  /// Total epsilon the manager may spend across every publish; 0 means
  /// unlimited. A replan that would overspend is refused and counted.
  double epsilon_budget = 0.0;
};

/// What one trigger firing did.
struct ReplanOutcome {
  ReplanTrigger trigger = ReplanTrigger::kManual;
  /// False when a drift check found the current release still best, or
  /// when the replan failed (see status).
  bool republished = false;
  /// True when ChoosePlan ran (always, except a concrete-strategy
  /// initial publish); `plan` is meaningful only then.
  bool planned = false;
  planner::Plan plan;
  /// Epoch of the new snapshot when republished.
  std::uint64_t epoch = 0;
  std::shared_ptr<const Snapshot> snapshot;
  /// Measured predicted-MSE ratio current/best for drift evaluations.
  double measured_drift = 0.0;
  Status status = Status::Ok();
};

/// Drives republishing for one QueryService over one private histogram.
/// All public methods are thread-safe.
class EpochManager {
 public:
  /// Keeps a copy of `data` (replans rebuild from it) and spends from
  /// a deterministic seed stream derived from `seed`.
  EpochManager(QueryService* service, Histogram data,
               const EpochManagerOptions& options, std::uint64_t seed);

  /// Joins the worker; any in-flight replan completes first.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// First publish (synchronous). With base.strategy == kAuto, plans
  /// against `profile` when given and non-empty, else the service's
  /// observed traffic, else a neutral geometric sweep.
  Result<ReplanOutcome> PublishInitial(
      const planner::WorkloadProfile* profile = nullptr);

  /// Checks the triggers against the service's observed counters and
  /// starts (async) or performs (sync) at most one replan. Returns true
  /// when a replan or drift check was started/performed by this call.
  /// Cheap when nothing fires: two atomic sums and a compare.
  bool Poll();

  /// Explicit synchronous replan (the REPL `replan` command): waits for
  /// any in-flight replan, then plans and republishes on this thread.
  /// Fails (without publishing) when the budget would be overspent or
  /// no candidate is feasible.
  Result<ReplanOutcome> ReplanNow();

  /// Blocks until no replan is queued or running.
  void Drain();

  /// Outcomes completed since the last call, oldest first. The serving
  /// loop polls this to print "# planned ..." lines for async replans.
  std::vector<ReplanOutcome> TakeCompleted();

  struct Stats {
    std::uint64_t republishes = 0;    // successful publishes incl. initial
    std::uint64_t manual = 0;         // republishes by trigger
    std::uint64_t every = 0;
    std::uint64_t drift = 0;
    std::uint64_t drift_checks = 0;   // evaluations that kept the release
    std::uint64_t failures = 0;       // attempts that errored
    std::uint64_t budget_refusals = 0;
    double epsilon_spent = 0.0;
    double epsilon_budget = 0.0;      // 0 = unlimited
  };
  Stats stats() const;

  const EpochManagerOptions& options() const { return options_; }

 private:
  /// The full replan: export profile, ChoosePlan, drift gate, budget
  /// gate, publish. Runs with `busy_` held (never concurrently with
  /// itself); takes mutex_ only for short state reads/writes.
  ReplanOutcome ExecuteReplan(ReplanTrigger trigger);

  /// Records the outcome in stats_ and the completion queue. Requires
  /// mutex_.
  void RecordLocked(const ReplanOutcome& outcome);

  /// Next publish seed from the deterministic stream. Requires mutex_.
  std::uint64_t NextSeedLocked();

  void WorkerLoop();

  QueryService* service_;
  const Histogram data_;
  const EpochManagerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // wakes the worker
  std::condition_variable idle_cv_;  // wakes Drain/ReplanNow waiters
  bool stop_ = false;
  bool request_pending_ = false;
  ReplanTrigger request_trigger_ = ReplanTrigger::kManual;
  bool busy_ = false;  // a replan is executing (worker or sync caller)
  std::vector<ReplanOutcome> completed_;
  Stats stats_;
  PrivacyAccountant accountant_;
  /// Observed-query counts anchoring the every-N and drift triggers.
  std::uint64_t count_at_last_publish_ = 0;
  std::uint64_t count_at_last_drift_check_ = 0;
  Rng seed_rng_;
  std::thread worker_;  // running only when options_.async
};

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_EPOCH_MANAGER_H_
