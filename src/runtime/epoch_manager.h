// EpochManager: the publish lifecycle of a long-lived QueryService.
//
// PR 3 left the planner an offline advisor: `dphist serve` planned once,
// published once, and exited. The EpochManager closes the loop — it
// watches the service's observed-traffic profile and republishes when a
// trigger says the current release no longer fits the traffic:
//
//   every-N   an automatic republish every `replan_every` observed
//             queries (unconditional — a standing re-publication
//             schedule);
//   drift     every `drift_check_every` queries the manager re-runs
//             ChoosePlan on the exported profile and compares the
//             current release's predicted MSE against the best
//             candidate's; a ratio of at least 1 + drift_ratio
//             republishes, anything less is recorded as a drift check
//             and costs no privacy;
//   manual    ReplanNow() — the REPL `replan` command.
//
// A replan runs off the serving thread (options.async): the worker
// exports the profile, runs ChoosePlan, builds the snapshot, and the
// QueryService swaps it in atomically — readers never block, and every
// in-flight batch still finishes under the epoch it started on. The
// completed outcome is broadcast to every subscribed session
// (Subscribe/TakeCompleted), so each session's transcript shows each
// "# planned ..." line exactly once — with several concurrent sessions
// (the socket transport) no client can steal another's announcements.
//
// Privacy: every republish is a fresh interaction with the private data
// and spends a fresh options.base.epsilon (sequential composition across
// epochs — see README "Streaming serving"). The manager tracks the
// cumulative spend through a PrivacyAccountant; with a finite
// epsilon_budget it refuses replans that would overspend instead of
// silently degrading the guarantee.

#ifndef DPHIST_RUNTIME_EPOCH_MANAGER_H_
#define DPHIST_RUNTIME_EPOCH_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "domain/histogram.h"
#include "mechanism/privacy_accountant.h"
#include "planner/planner.h"
#include "service/query_service.h"
#include "storage/epoch_store.h"

namespace dphist::runtime {

/// Why a republish (or drift check) happened.
enum class ReplanTrigger { kInitial, kManual, kEveryN, kDrift, kRecover };

/// Short stable name ("initial", "manual", "every", "drift", "recover").
const char* ReplanTriggerName(ReplanTrigger trigger);

struct EpochManagerOptions {
  /// Per-release knobs; strategy may be kAuto (planned per publish) or
  /// concrete (the initial publish skips planning; replans still plan).
  SnapshotOptions base;
  /// Candidate enumeration for ChoosePlan.
  planner::PlannerOptions planner;
  /// Republish after this many observed queries since the last publish;
  /// 0 disables the every-N trigger.
  std::int64_t replan_every = 0;
  /// Republish when predicted-MSE(current) / predicted-MSE(best) is at
  /// least 1 + drift_ratio; 0 disables the drift trigger.
  double drift_ratio = 0.0;
  /// Observed queries between drift evaluations.
  std::int64_t drift_check_every = 256;
  /// Run triggered replans on the manager's worker thread (readers and
  /// the serving loop never wait on a build). False makes every replan
  /// synchronous — deterministic transcripts for scripted sessions.
  bool async = true;
  /// Total epsilon the manager may spend across every publish; 0 means
  /// unlimited. A replan that would overspend is refused and counted.
  double epsilon_budget = 0.0;
  /// Durable state (not owned; must outlive the manager). When set,
  /// every spend is WAL-appended and every committed publish persisted
  /// BEFORE it becomes visible, and Recover() can warm-restart the
  /// manager into its last epoch. Null keeps the manager RAM-only.
  storage::EpochStore* store = nullptr;
};

/// What one trigger firing did.
struct ReplanOutcome {
  ReplanTrigger trigger = ReplanTrigger::kManual;
  /// False when a drift check found the current release still best, or
  /// when the replan failed (see status).
  bool republished = false;
  /// True when ChoosePlan ran (always, except a concrete-strategy
  /// initial publish); `plan` is meaningful only then.
  bool planned = false;
  planner::Plan plan;
  /// Epoch of the new snapshot when republished.
  std::uint64_t epoch = 0;
  std::shared_ptr<const Snapshot> snapshot;
  /// Measured predicted-MSE ratio current/best for drift evaluations.
  /// Meaningful only when drift_measured is true: a drift check can
  /// also keep the release because the current configuration is not
  /// costable (e.g. analyzer width cap) while the planner re-chooses
  /// it — no ratio was ever computed then.
  double measured_drift = 0.0;
  bool drift_measured = false;
  Status status = Status::Ok();
};

/// Drives republishing for one QueryService over one private histogram.
/// All public methods are thread-safe; any number of serving sessions
/// may share one manager (each holding its own subscription).
class EpochManager {
 public:
  /// Identifies one completed-outcome subscriber (a serving session).
  using SubscriberId = std::uint64_t;
  /// Never a valid subscription: "report to nobody in particular".
  static constexpr SubscriberId kNoSubscriber = 0;
  /// Outcomes queued per subscriber before the oldest is dropped (a
  /// session that never polls must not pin every old snapshot alive).
  static constexpr std::size_t kMaxQueuedPerSubscriber = 64;

  /// Keeps a copy of `data` (replans rebuild from it) and spends from
  /// a deterministic seed stream derived from `seed`.
  EpochManager(QueryService* service, Histogram data,
               const EpochManagerOptions& options, std::uint64_t seed);

  /// Joins the worker; any in-flight replan completes first.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// First publish (synchronous). With base.strategy == kAuto, plans
  /// against `profile` when given and non-empty, else the service's
  /// observed traffic, else a neutral geometric sweep. Serialized
  /// through the same busy token replans hold, so the budget check and
  /// the spend are atomic against concurrent replans; an exhausted
  /// budget is a graceful FailedPrecondition, never an abort.
  Result<ReplanOutcome> PublishInitial(
      const planner::WorkloadProfile* profile = nullptr);

  /// Replays the configured store (options.store must be set): imports
  /// the WAL spend ledger into the accountant bit-exactly, fast-forwards
  /// the publish seed stream by one draw per recovered spend, installs
  /// the persisted snapshot (if any) as the current epoch with
  /// bit-identical answers, and keeps the persisted planner profile for
  /// replans until fresh traffic accumulates. Call once, before
  /// PublishInitial: outcome.republished tells whether a snapshot was
  /// restored (when false, the caller still needs an initial publish —
  /// which the recovered ledger gates, so a restart can never republish
  /// beyond the budget). Corrupt state is an IoError, never garbage.
  Result<ReplanOutcome> Recover();

  /// Checks the triggers against the service's observed counters and
  /// starts (async) or performs (sync) at most one replan. Returns true
  /// when a replan or drift check was started/performed by this call.
  /// Cheap when nothing fires: two atomic sums and a compare.
  bool Poll();

  /// Explicit synchronous replan (the REPL `replan` command): waits for
  /// any in-flight replan, then plans and republishes on this thread.
  /// Fails (without publishing) when the budget would be overspent or
  /// no candidate is feasible. The outcome is returned to the caller
  /// AND broadcast to every subscriber except `reporter` (the calling
  /// session reports it directly; everyone else still learns the epoch
  /// changed under them).
  Result<ReplanOutcome> ReplanNow(SubscriberId reporter = kNoSubscriber);

  /// Blocks until no replan is queued or running.
  void Drain();

  /// Registers a session for completed-outcome announcements. Only
  /// outcomes recorded after this call are delivered.
  SubscriberId Subscribe();

  /// Drops a subscription and its undelivered outcomes. Unknown ids are
  /// ignored (a session may outlive a manager reset in tests).
  void Unsubscribe(SubscriberId id);

  /// Outcomes recorded for `id` since its last call, oldest first. Each
  /// serving session polls its own subscription to print "# planned
  /// ..." lines — one session consuming its queue never steals
  /// another's announcements.
  std::vector<ReplanOutcome> TakeCompleted(SubscriberId id);

  /// Registers a callback invoked — outside every manager lock — right
  /// after an outcome has been broadcast to the subscriber queues. The
  /// non-blocking transport binds this to its wakeup pipe so completed
  /// replans become write-queue pushes: sessions parked in epoll learn
  /// about a republish immediately instead of at their next command.
  /// At most one notifier (last call wins); nullptr clears it. The
  /// callback runs on whichever thread finished the replan (worker or a
  /// sync caller) and must be cheap and must not call back into the
  /// manager. This call BLOCKS until any in-flight invocation of the
  /// previous notifier returns, so `SetAnnouncementNotifier(nullptr)`
  /// is a safe unhook: afterwards the old callback's captures may be
  /// destroyed.
  void SetAnnouncementNotifier(std::function<void()> notifier);

  struct Stats {
    std::uint64_t republishes = 0;    // successful publishes incl. initial
    std::uint64_t manual = 0;         // republishes by trigger
    std::uint64_t every = 0;
    std::uint64_t drift = 0;
    std::uint64_t drift_checks = 0;   // evaluations that kept the release
    std::uint64_t failures = 0;       // attempts that errored
    std::uint64_t budget_refusals = 0;
    std::uint64_t recoveries = 0;     // successful Recover() calls
    /// Charges rolled back (memory + WAL) because the publish they paid
    /// for failed before becoming visible.
    std::uint64_t spend_rollbacks = 0;
    /// Incremental cost-cache counters (IncrementalCostModel::Stats):
    /// candidate costings served by re-running the variance oracle vs.
    /// re-weighting memoized per-length variance vectors.
    std::uint64_t cost_evaluations = 0;
    std::uint64_t cost_lengths_costed = 0;
    std::uint64_t cost_lengths_reused = 0;
    /// Announcements evicted from a subscriber queue that outgrew
    /// kMaxQueuedPerSubscriber (a session that stopped polling).
    std::uint64_t announcements_dropped = 0;
    double epsilon_spent = 0.0;
    double epsilon_budget = 0.0;      // 0 = unlimited
  };
  Stats stats() const;

  const EpochManagerOptions& options() const { return options_; }

 private:
  /// The full replan: export profile, ChoosePlan, drift gate, budget
  /// gate, publish. Runs with the busy token held (never concurrently
  /// with itself); takes mutex_ only for short state reads/writes.
  ReplanOutcome ExecuteReplan(ReplanTrigger trigger)
      DPHIST_REQUIRES(busy_cap_);

  /// The spend-before-publish core shared by PublishInitial and
  /// ExecuteReplan (busy token held, mutex_ not). In order: budget gate
  /// + seed draw + in-memory charge (atomic under mutex_), durable WAL
  /// spend append, snapshot build, durable swap append + snapshot
  /// persist, and only then the in-memory commit — so a crash at ANY
  /// point either never charged, or charged for a release that was
  /// never served (conservative). Any failure after the charge rolls
  /// back both the ledger entry and the WAL records.
  Result<std::shared_ptr<const Snapshot>> ChargeAndPublish(
      const SnapshotOptions& options, const std::string& purpose,
      const planner::WorkloadProfile* profile)
      DPHIST_REQUIRES(busy_cap_) DPHIST_EXCLUDES(mutex_);

  /// Undoes an in-memory charge (and, when `logged`, its WAL record)
  /// after the publish it paid for failed.
  void RollbackCharge(bool logged, std::uint64_t wal_offset)
      DPHIST_REQUIRES(busy_cap_) DPHIST_EXCLUDES(mutex_);

  /// Blocks until the busy token is free (no replan queued or running)
  /// and takes it / releases it. Every path that spends epsilon holds
  /// the token across its CanSpend check and the Spend, so the gate can
  /// never be invalidated by a concurrent publish. The phantom
  /// busy_cap_ mirrors the busy_ flag so the analysis proves every
  /// acquire is paired with a release on every path.
  void AcquireBusy() DPHIST_ACQUIRE(busy_cap_) DPHIST_EXCLUDES(mutex_);
  void ReleaseBusy() DPHIST_RELEASE(busy_cap_) DPHIST_EXCLUDES(mutex_);

  /// Evaluates the every-N and drift triggers against the service's
  /// observed counters; false when nothing is due or a replan is
  /// already queued/running/stopping.
  bool PollTriggerLocked(ReplanTrigger* trigger) DPHIST_REQUIRES(mutex_);

  /// Sync-mode Poll: evaluates the triggers and takes the busy token in
  /// ONE critical section (decision and take must be atomic, or two
  /// concurrent pollers could both fire). True = token taken.
  bool TryStartSyncReplan(ReplanTrigger* trigger)
      DPHIST_TRY_ACQUIRE(true, busy_cap_) DPHIST_EXCLUDES(mutex_);

  /// Decrements notifier_calls_in_flight_ and wakes a pending
  /// SetAnnouncementNotifier; paired with the increment each call site
  /// takes under mutex_ before invoking the notifier unlocked.
  void FinishNotifierCall() DPHIST_EXCLUDES(mutex_);

  /// Records the outcome in stats_ and broadcasts it to every
  /// subscriber queue except `skip`. Needs the busy token too: it
  /// snapshots the cost cache, which only the token holder may touch.
  void RecordLocked(const ReplanOutcome& outcome,
                    SubscriberId skip = kNoSubscriber)
      DPHIST_REQUIRES(mutex_, busy_cap_);

  /// Copies cost_cache_.stats() into stats_. Must be called by the
  /// busy-token holder (the only cache mutator).
  void SnapshotCostCacheStatsLocked() DPHIST_REQUIRES(mutex_, busy_cap_);

  /// Next publish seed from the deterministic stream.
  std::uint64_t NextSeedLocked() DPHIST_REQUIRES(mutex_);

  void WorkerLoop();

  QueryService* service_;
  const Histogram data_;
  const EpochManagerOptions options_;

  /// The busy token as an analysis capability: "at most one replan in
  /// flight" is enforced at runtime by busy_ under mutex_; this phantom
  /// lets spend/publish functions require the token so the compiler
  /// checks that every acquire path releases it (the historical bug
  /// class here was an early return that left busy_ stuck).
  PhantomCapability busy_cap_;

  /// Long-lived incremental cost cache shared by every plan and drift
  /// evaluation this manager runs. Guarded by the busy token, not
  /// mutex_: only the token holder may touch it, and holding the token
  /// never requires holding the mutex.
  planner::IncrementalCostModel cost_cache_ DPHIST_GUARDED_BY(busy_cap_);

  mutable Mutex mutex_;
  CondVar work_cv_;  // wakes the worker
  CondVar idle_cv_;  // wakes Drain/ReplanNow waiters
  bool stop_ DPHIST_GUARDED_BY(mutex_) = false;
  bool request_pending_ DPHIST_GUARDED_BY(mutex_) = false;
  ReplanTrigger request_trigger_ DPHIST_GUARDED_BY(mutex_) =
      ReplanTrigger::kManual;
  /// A replan is executing (worker or sync caller); runtime twin of
  /// busy_cap_.
  bool busy_ DPHIST_GUARDED_BY(mutex_) = false;
  /// Per-subscriber undelivered outcomes; every recorded outcome is
  /// appended to every queue (minus the skip id), bounded at
  /// kMaxQueuedPerSubscriber by dropping the oldest.
  std::map<SubscriberId, std::deque<ReplanOutcome>> subscribers_
      DPHIST_GUARDED_BY(mutex_);
  SubscriberId next_subscriber_ DPHIST_GUARDED_BY(mutex_) = 1;
  /// Copied out under mutex_ and invoked unlocked after each broadcast.
  std::function<void()> announcement_notifier_ DPHIST_GUARDED_BY(mutex_);
  /// Unlocked notifier calls currently executing. SetAnnouncementNotifier
  /// waits for zero before swapping, so unhooking guarantees the old
  /// callback is not (and will never again be) mid-call — the caller may
  /// free whatever it touches.
  int notifier_calls_in_flight_ DPHIST_GUARDED_BY(mutex_) = 0;
  Stats stats_ DPHIST_GUARDED_BY(mutex_);
  PrivacyAccountant accountant_ DPHIST_GUARDED_BY(mutex_);
  /// Observed-query counts anchoring the every-N and drift triggers.
  std::uint64_t count_at_last_publish_ DPHIST_GUARDED_BY(mutex_) = 0;
  std::uint64_t count_at_last_drift_check_ DPHIST_GUARDED_BY(mutex_) = 0;
  Rng seed_rng_ DPHIST_GUARDED_BY(mutex_);
  /// The planner profile recovered from the store, used by replans while
  /// the observed workload is still empty. Mutated under the busy token.
  std::optional<planner::WorkloadProfile> recovered_profile_
      DPHIST_GUARDED_BY(busy_cap_);
  std::thread worker_;  // running only when options_.async
};

/// Scoped subscription: subscribes on construction, unsubscribes on
/// destruction. Every serving session holds one for its lifetime.
class EpochSubscription {
 public:
  explicit EpochSubscription(EpochManager& manager)
      : manager_(manager), id_(manager.Subscribe()) {}
  ~EpochSubscription() { manager_.Unsubscribe(id_); }

  EpochSubscription(const EpochSubscription&) = delete;
  EpochSubscription& operator=(const EpochSubscription&) = delete;

  EpochManager::SubscriberId id() const { return id_; }

 private:
  EpochManager& manager_;
  EpochManager::SubscriberId id_;
};

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_EPOCH_MANAGER_H_
