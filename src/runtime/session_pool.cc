#include "runtime/session_pool.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#define DPHIST_HAVE_EPOLL 1
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "runtime/session.h"
#include "runtime/wire_format.h"
#include "service/snapshot.h"

namespace dphist::runtime {
namespace {

/// Backpressure watermarks on a connection's write buffer: past kHigh
/// the connection stops reading (its own reads only — nobody else's);
/// once a flush gets it back under kLow, reading resumes.
constexpr std::size_t kHighWatermark = std::size_t{1} << 20;
constexpr std::size_t kLowWatermark = std::size_t{1} << 18;
/// A single command (text line or frame) larger than this is hostile.
constexpr std::size_t kMaxInputBuffer = std::size_t{1} << 26;
/// Compact the write buffer once this much has been flushed off its
/// front (erase is O(remaining), so amortize it).
constexpr std::size_t kCompactThreshold = std::size_t{1} << 16;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Readiness events for one fd.
struct Ready {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Minimal level-triggered readiness poller: epoll on Linux, poll(2)
/// elsewhere. Not thread-safe — each worker owns one.
class Poller {
 public:
  ~Poller() {
#if DPHIST_HAVE_EPOLL
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  }

  Status Init() {
#if DPHIST_HAVE_EPOLL
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      return Status::IoError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
#endif
    return Status::Ok();
  }

  void Watch(int fd, bool read, bool write) {
#if DPHIST_HAVE_EPOLL
    const std::uint32_t events =
        (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    // The worker re-asserts interest after every pump; a steady-state
    // connection (readable, not write-blocked) must cost zero syscalls
    // here, not one epoll_ctl per round.
    const auto it = interest_.find(fd);
    if (it != interest_.end() && it->second == events) return;
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (it == interest_.end()) {
      interest_.emplace(fd, events);
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    } else {
      it->second = events;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
#else
    interest_[fd] = (read ? POLLIN : 0) | (write ? POLLOUT : 0);
#endif
  }

  void Forget(int fd) {
#if DPHIST_HAVE_EPOLL
    if (interest_.erase(fd) > 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    }
#else
    interest_.erase(fd);
#endif
  }

  /// Blocks until at least one fd is ready; fills `out`.
  void Wait(std::vector<Ready>* out) {
    out->clear();
#if DPHIST_HAVE_EPOLL
    epoll_event events[128];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 128, -1);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      Ready ready;
      ready.fd = events[i].data.fd;
      ready.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ready.writable = (events[i].events & EPOLLOUT) != 0;
      ready.error = (events[i].events & EPOLLERR) != 0;
      out->push_back(ready);
    }
#else
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, events] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(events);
      fds.push_back(p);
    }
    int n;
    do {
      n = ::poll(fds.data(), fds.size(), -1);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      Ready ready;
      ready.fd = p.fd;
      ready.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ready.writable = (p.revents & POLLOUT) != 0;
      ready.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(ready);
    }
#endif
  }

 private:
#if DPHIST_HAVE_EPOLL
  int epoll_fd_ = -1;
  std::map<int, std::uint32_t> interest_;  // fd -> registered events
#else
  std::map<int, int> interest_;
#endif
};

/// One connection's state machine.
struct Conn {
  enum class Phase {
    kAuth,       // waiting for the "auth <token>" line
    kNegotiate,  // banner sent; first byte picks the protocol
    kText,       // line protocol
    kBinary,     // frame protocol
  };

  explicit Conn(int fd_in) : fd(fd_in), writer(staging) {}

  int fd;
  Phase phase = Phase::kAuth;
  std::string inbuf;
  std::string outbuf;
  std::size_t out_pos = 0;
  bool want_write = false;   // registered for writability
  bool paused_read = false;  // backpressure: over the high watermark
  bool close_after_flush = false;
  bool saw_eof = false;
  std::int64_t line_number = 0;
  std::uint64_t write_errors = 0;
  bool peer_reset = false;
  bool auth_failed = false;
  Status session_status = Status::Ok();
  std::int64_t domain_size = 0;
  /// Text output staging: the SessionWriter renders into this, and the
  /// worker moves the bytes to outbuf after each command.
  std::ostringstream staging;
  SessionWriter writer;
  std::unique_ptr<SessionExecutor> executor;
};

}  // namespace

bool ConstantTimeEquals(std::string_view a, std::string_view b) {
  unsigned diff = static_cast<unsigned>(a.size() ^ b.size());
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i])
                                          : static_cast<unsigned char>(0);
    const unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i])
                                          : static_cast<unsigned char>(0);
    diff |= static_cast<unsigned>(ca ^ cb);
  }
  return diff == 0;
}

struct SessionPool::Worker {
  std::thread thread;
  Poller poller;
  int wake_read = -1;
  int wake_write = -1;
  Mutex mutex;
  std::deque<int> incoming        // adopted fds waiting to join the loop
      DPHIST_GUARDED_BY(mutex);
  std::atomic<bool> announce{false};
  std::map<int, std::unique_ptr<Conn>> conns;  // owned by the loop thread

  ~Worker() {
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }

  void Wake() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wake_write, &byte, 1);
  }
};

SessionPool::SessionPool(QueryService& service, EpochManager& manager,
                         const SessionPoolOptions& options)
    : service_(service), manager_(manager), options_(options) {}

SessionPool::~SessionPool() { Stop(); }

Status SessionPool::Start() {
  MutexLock lock(start_mutex_);
  if (started_) return Status::FailedPrecondition("pool already started");
  const int worker_count = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    auto worker = std::make_unique<Worker>();
    Status init = worker->poller.Init();
    if (!init.ok()) return init;
    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0) {
      return Status::IoError(std::string("pipe: ") + std::strerror(errno));
    }
    worker->wake_read = pipe_fds[0];
    worker->wake_write = pipe_fds[1];
    SetNonBlocking(worker->wake_read);
    SetNonBlocking(worker->wake_write);
    worker->poller.Watch(worker->wake_read, /*read=*/true, /*write=*/false);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::thread([this, raw] { WorkerLoop(*raw); });
  }
  started_ = true;
  return Status::Ok();
}

bool SessionPool::Adopt(int fd) {
  MutexLock lock(start_mutex_);
  if (stopping_.load(std::memory_order_acquire) || workers_.empty()) {
    ::close(fd);
    return false;
  }
  SetNonBlocking(fd);
  const std::size_t index =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  Worker& worker = *workers_[index];
  {
    MutexLock worker_lock(worker.mutex);
    worker.incoming.push_back(fd);
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  worker.Wake();
  return true;
}

void SessionPool::NotifyAnnouncements() {
  MutexLock lock(start_mutex_);
  for (auto& worker : workers_) {
    worker->announce.store(true, std::memory_order_release);
    worker->Wake();
  }
}

void SessionPool::Stop() {
  // Joining under start_mutex_ makes Stop safe against itself and the
  // destructor: exactly one caller performs each join, any other blocks
  // until the joins finish and then sees non-joinable threads. Worker
  // loops never take start_mutex_, so the joins cannot deadlock.
  MutexLock lock(start_mutex_);
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    for (auto& worker : workers_) worker->Wake();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

// --------------------------------------------------------- worker loop

namespace {

/// Everything the loop needs to drive one connection; methods are free
/// functions so the loop body stays readable.
class ConnDriver {
 public:
  ConnDriver(QueryService& service, EpochManager& manager,
             const SessionPoolOptions& options)
      : service_(service), manager_(manager), options_(options) {}

  /// First contact: auth prompt is silent, so this only emits the error
  /// banner when there is nothing to serve yet.
  void Open(Conn& c) {
    if (options_.auth_token.empty()) {
      EnterSession(c);
    }
    // else: stay in kAuth; the banner goes out after a good token.
  }

  /// Consumes as much buffered input as the current phase allows.
  /// Returns false when the connection must close without flushing
  /// (protocol violation on a dead peer); normal closes set
  /// close_after_flush instead.
  void Process(Conn& c) {
    bool progress = true;
    while (progress && !c.close_after_flush) {
      progress = false;
      switch (c.phase) {
        case Conn::Phase::kAuth:
          progress = ProcessAuth(c);
          break;
        case Conn::Phase::kNegotiate:
          progress = ProcessNegotiate(c);
          break;
        case Conn::Phase::kText:
          progress = ProcessText(c);
          break;
        case Conn::Phase::kBinary:
          progress = ProcessBinary(c);
          break;
      }
    }
    if (c.saw_eof && !c.close_after_flush) {
      // The peer finished sending without an explicit quit/GOODBYE:
      // treat it as the implicit quit the blocking transport honored.
      FinishSession(c);
    }
  }

  /// Delivers queued replan announcements (the push path).
  void DeliverAnnouncements(Conn& c) {
    if (c.executor == nullptr || c.close_after_flush) return;
    // A connection that has not picked its protocol yet must not get
    // text pushed at it that a binary client would misparse; its queue
    // drains right after negotiation.
    if (c.phase == Conn::Phase::kText) {
      for (const ReplanOutcome& outcome : c.executor->TakeAnnouncements()) {
        ReportText(c, outcome);
      }
      MoveStaging(c);
    } else if (c.phase == Conn::Phase::kBinary) {
      for (const ReplanOutcome& outcome : c.executor->TakeAnnouncements()) {
        ReportBinary(c, outcome);
      }
    }
  }

  /// The final receipt + close for quit/GOODBYE/EOF.
  void FinishSession(Conn& c) {
    if (c.executor != nullptr) {
      // Deterministic endings: let any in-flight replan land and
      // announce it before the receipt (the CI smoke requires the
      // announcement to appear in every transcript).
      manager_.Drain();
      const std::uint64_t epoch =
          c.executor->summary().last_epoch != 0
              ? c.executor->summary().last_epoch
              : service_.current_epoch();
      if (c.phase == Conn::Phase::kBinary) {
        for (const ReplanOutcome& outcome : c.executor->PollAndTake()) {
          ReportBinary(c, outcome);
        }
        wire::EncodeBye(c.executor->summary().queries, epoch, &c.outbuf);
      } else {
        c.executor->PollAndReport();
        std::ostringstream text;
        text << "served " << c.executor->summary().queries
             << " queries from epoch " << epoch;
        c.writer.Comment(text.str());
        MoveStaging(c);
      }
    }
    c.close_after_flush = true;
  }

 private:
  void MoveStaging(Conn& c) {
    c.outbuf += c.staging.str();
    c.staging.str(std::string());
  }

  /// Sends the banner (or the no-snapshot error) and creates the
  /// executor; the connection then negotiates its protocol.
  void EnterSession(Conn& c) {
    std::shared_ptr<const Snapshot> snapshot = service_.snapshot();
    if (snapshot == nullptr) {
      c.session_status = Status::FailedPrecondition(
          "socket session needs a published snapshot");
      c.writer.Error(c.session_status);
      MoveStaging(c);
      c.close_after_flush = true;
      return;
    }
    c.domain_size = snapshot->domain_size();
    WriteServingBanner(c.writer, *snapshot);
    MoveStaging(c);
    // Bind the stats line's write_errors field to THIS connection, so a
    // client can ask mid-session whether any of its answers were lost.
    // The Conn outlives its executor, and both live on this worker.
    Conn* raw = &c;
    c.executor = std::make_unique<SessionExecutor>(
        c.writer, service_, manager_, [raw] { return raw->write_errors; });
    c.phase = Conn::Phase::kNegotiate;
  }

  bool ProcessAuth(Conn& c) {
    const std::size_t newline = c.inbuf.find('\n');
    if (newline == std::string::npos) return false;
    std::string line = c.inbuf.substr(0, newline);
    c.inbuf.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    c.line_number += 1;
    const std::string_view prefix = "auth ";
    const bool well_formed =
        line.size() > prefix.size() &&
        std::string_view(line).substr(0, prefix.size()) == prefix;
    const std::string_view token =
        well_formed ? std::string_view(line).substr(prefix.size())
                    : std::string_view();
    // Compare even for malformed lines so a probe cannot time-split
    // "wrong command" from "wrong token".
    const bool match = ConstantTimeEquals(token, options_.auth_token);
    if (!well_formed || !match) {
      c.auth_failed = true;
      c.session_status = Status::FailedPrecondition("authentication failed");
      c.outbuf += "error: authentication failed\n";
      c.close_after_flush = true;
      return false;
    }
    EnterSession(c);
    return true;
  }

  bool ProcessNegotiate(Conn& c) {
    if (c.inbuf.empty()) return false;
    if (static_cast<unsigned char>(c.inbuf[0]) == wire::kMagic) {
      c.inbuf.erase(0, 1);
      c.phase = Conn::Phase::kBinary;
      c.executor->set_protocol("binary");
      wire::EncodeHello(static_cast<std::uint64_t>(c.domain_size),
                        service_.current_epoch(), &c.outbuf);
    } else {
      c.phase = Conn::Phase::kText;
    }
    // Announcements that queued while the protocol was undecided.
    DeliverAnnouncements(c);
    return true;
  }

  bool ProcessText(Conn& c) {
    const std::size_t newline = c.inbuf.find('\n');
    if (newline == std::string::npos) return false;
    std::string line = c.inbuf.substr(0, newline);
    c.inbuf.erase(0, newline + 1);
    c.line_number += 1;
    SessionCommand command;
    Result<bool> parsed =
        ParseSessionLine(line, c.domain_size, c.line_number, &command);
    if (!parsed.ok()) {
      c.executor->summary().parse_errors += 1;
      c.writer.Error(parsed.status());
      MoveStaging(c);
      return true;
    }
    if (!parsed.value()) return true;  // blank or comment
    if (command.verb == SessionVerb::kQuit) {
      FinishSession(c);
      return false;
    }
    Status status = c.executor->Execute(command, /*interactive=*/true);
    if (!status.ok()) c.writer.Error(status);
    c.executor->PollAndReport();
    MoveStaging(c);
    return true;
  }

  bool ProcessBinary(Conn& c) {
    wire::Frame frame;
    Result<std::size_t> consumed = wire::DecodeFrame(c.inbuf, &frame);
    if (!consumed.ok()) {
      // Framing is broken: nothing after this point can be trusted.
      wire::EncodeError(0, wire::WireError::kBadRequest,
                        consumed.status().ToString(), &c.outbuf);
      c.session_status = consumed.status();
      c.close_after_flush = true;
      return false;
    }
    if (consumed.value() == 0) return false;  // incomplete frame
    const bool keep = DispatchFrame(c, frame);
    c.inbuf.erase(0, consumed.value());
    return keep;
  }

  bool DispatchFrame(Conn& c, const wire::Frame& frame) {
    switch (frame.type) {
      case wire::FrameType::kQuery: {
        wire::QueryFrame query;
        Status parsed = wire::ParseQuery(frame.payload, c.domain_size, &query);
        if (!parsed.ok()) {
          if (parsed.code() == StatusCode::kOutOfRange) {
            // Bad ranges are a request-scoped error (the text protocol
            // survives them too); broken framing is fatal above.
            wire::EncodeError(query.id, wire::WireError::kBadRequest,
                              parsed.ToString(), &c.outbuf);
            return true;
          }
          wire::EncodeError(query.id, wire::WireError::kBadRequest,
                            parsed.ToString(), &c.outbuf);
          c.session_status = parsed;
          c.close_after_flush = true;
          return false;
        }
        if (query.expect_epoch != 0 &&
            service_.current_epoch() != query.expect_epoch) {
          wire::EncodeError(query.id, wire::WireError::kEpochMismatch,
                            "epoch " + std::to_string(query.expect_epoch) +
                                " is no longer current",
                            &c.outbuf);
          return true;
        }
        Result<std::uint64_t> answered = c.executor->AnswerBatch(
            query.ranges.data(), query.ranges.size(), &answers_);
        if (!answered.ok()) {
          // Request-scoped (a range the wire validation missed, or no
          // snapshot yet): the session survives, like the text path.
          wire::EncodeError(query.id, wire::WireError::kBadRequest,
                            answered.status().ToString(), &c.outbuf);
          return true;
        }
        const std::uint64_t epoch = answered.value();
        if (query.expect_epoch != 0 && epoch != query.expect_epoch) {
          // A swap landed between the check above and the batch's
          // snapshot load; honor the demand rather than the answers.
          wire::EncodeError(query.id, wire::WireError::kEpochMismatch,
                            "epoch " + std::to_string(query.expect_epoch) +
                                " swapped out mid-request",
                            &c.outbuf);
        } else {
          wire::EncodeAnswers(query.id, epoch, answers_.data(),
                              answers_.size(), &c.outbuf);
        }
        for (const ReplanOutcome& outcome : c.executor->PollAndTake()) {
          ReportBinary(c, outcome);
        }
        return true;
      }
      case wire::FrameType::kStats: {
        std::uint64_t id = 0;
        if (!wire::ParseIdOnly(frame.payload, &id).ok()) {
          c.close_after_flush = true;
          return false;
        }
        c.executor->summary().commands += 1;
        wire::EncodeStatsText(id, c.executor->StatsText(), &c.outbuf);
        return true;
      }
      case wire::FrameType::kReplan: {
        std::uint64_t id = 0;
        if (!wire::ParseIdOnly(frame.payload, &id).ok()) {
          c.close_after_flush = true;
          return false;
        }
        c.executor->summary().commands += 1;
        Result<ReplanOutcome> outcome = c.executor->ManualReplan();
        if (!outcome.ok()) {
          wire::EncodeError(id, wire::WireError::kFailed,
                            outcome.status().ToString(), &c.outbuf);
        } else {
          ReportBinary(c, outcome.value());
        }
        return true;
      }
      case wire::FrameType::kGoodbye:
        FinishSession(c);
        return false;
      default:
        // A client sending server->client frame types is out of
        // protocol.
        wire::EncodeError(0, wire::WireError::kBadRequest,
                          "unexpected frame type", &c.outbuf);
        c.session_status =
            Status::InvalidArgument("client sent a server frame type");
        c.close_after_flush = true;
        return false;
    }
  }

  void ReportText(Conn& c, const ReplanOutcome& outcome) {
    if (outcome.republished) {
      c.writer.PlanNote(outcome.plan, outcome.epoch,
                        ReplanTriggerName(outcome.trigger));
      c.executor->summary().replans_reported += 1;
    } else {
      c.writer.Comment(SessionExecutor::OutcomeComment(outcome));
    }
  }

  void ReportBinary(Conn& c, const ReplanOutcome& outcome) {
    if (outcome.republished) {
      wire::EncodePlan(outcome.epoch,
                       StrategyKindName(outcome.plan.options.strategy),
                       static_cast<std::uint64_t>(outcome.plan.options.shards),
                       ReplanTriggerName(outcome.trigger),
                       outcome.plan.predicted_mean_variance, &c.outbuf);
      c.executor->summary().replans_reported += 1;
    } else {
      wire::EncodeNote(SessionExecutor::OutcomeComment(outcome), &c.outbuf);
    }
  }

  QueryService& service_;
  EpochManager& manager_;
  const SessionPoolOptions& options_;
  std::vector<double> answers_;  // reused across QUERY frames
};

}  // namespace

void SessionPool::WorkerLoop(Worker& worker) {
  ConnDriver driver(service_, manager_, options_);
  std::vector<Ready> events;

  auto update_interest = [&worker](Conn& c) {
    worker.poller.Watch(c.fd, /*read=*/!c.paused_read && !c.close_after_flush,
                        /*write=*/c.want_write);
  };

  // Flushes what the socket will take. Returns false when the
  // connection died mid-write.
  auto flush = [&](Conn& c) -> bool {
    while (c.out_pos < c.outbuf.size()) {
      const ssize_t n =
          ::send(c.fd, c.outbuf.data() + c.out_pos,
                 c.outbuf.size() - c.out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == ECONNRESET || errno == EPIPE) c.peer_reset = true;
        c.write_errors += 1;
        return false;
      }
      c.out_pos += static_cast<std::size_t>(n);
    }
    if (c.out_pos == c.outbuf.size()) {
      c.outbuf.clear();
      c.out_pos = 0;
    } else if (c.out_pos >= kCompactThreshold) {
      c.outbuf.erase(0, c.out_pos);
      c.out_pos = 0;
    }
    const std::size_t pending = c.outbuf.size() - c.out_pos;
    c.want_write = pending > 0;
    if (c.paused_read && pending < kLowWatermark) c.paused_read = false;
    return true;
  };

  auto finish_conn = [&](Conn& c) {
    SessionDone done;
    if (c.executor != nullptr) done.summary = c.executor->summary();
    done.status = c.session_status;
    done.write_errors = c.write_errors;
    done.peer_reset = c.peer_reset;
    done.auth_failed = c.auth_failed;
    done.binary = c.phase == Conn::Phase::kBinary;
    worker.poller.Forget(c.fd);
    ::close(c.fd);
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (options_.on_session_done) options_.on_session_done(done);
  };

  auto close_conn = [&](int fd) {
    auto it = worker.conns.find(fd);
    if (it == worker.conns.end()) return;
    finish_conn(*it->second);
    worker.conns.erase(it);
  };

  // Returns false when the connection is gone.
  auto pump = [&](Conn& c) -> bool {
    driver.Process(c);
    if (!flush(c)) return false;
    if (c.close_after_flush && c.out_pos == c.outbuf.size() &&
        c.outbuf.empty()) {
      return false;
    }
    // Backpressure: a slow reader with a swollen write buffer stops
    // being read until it drains (its fd only — the loop keeps serving
    // everyone else).
    if (!c.paused_read && c.outbuf.size() - c.out_pos > kHighWatermark) {
      c.paused_read = true;
    }
    update_interest(c);
    return true;
  };

  while (true) {
    if (stopping_.load(std::memory_order_acquire)) break;

    worker.poller.Wait(&events);

    if (stopping_.load(std::memory_order_acquire)) break;

    bool woke = false;
    for (const Ready& ready : events) {
      if (ready.fd == worker.wake_read) {
        char drain[256];
        while (::read(worker.wake_read, drain, sizeof(drain)) > 0) {
        }
        woke = true;
        continue;
      }
      auto it = worker.conns.find(ready.fd);
      if (it == worker.conns.end()) continue;
      Conn& c = *it->second;

      if (ready.error) {
        c.peer_reset = true;
        close_conn(ready.fd);
        continue;
      }
      if (ready.writable) {
        if (!flush(c)) {
          close_conn(ready.fd);
          continue;
        }
        if (c.close_after_flush && c.outbuf.empty()) {
          close_conn(ready.fd);
          continue;
        }
        update_interest(c);
      }
      if (ready.readable && !c.paused_read && !c.close_after_flush) {
        char buf[1 << 16];
        bool dead = false;
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.inbuf.append(buf, static_cast<std::size_t>(n));
            if (c.inbuf.size() > kMaxInputBuffer) {
              c.session_status =
                  Status::InvalidArgument("input buffer limit exceeded");
              dead = true;
            }
            if (c.paused_read) break;
            // A short read drained the socket buffer — no need to pay
            // a second recv just to see EAGAIN. Level-triggered polling
            // re-reports the fd if more bytes arrive meanwhile.
            if (static_cast<std::size_t>(n) < sizeof(buf)) break;
            continue;
          }
          if (n == 0) {
            c.saw_eof = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == ECONNRESET) c.peer_reset = true;
          dead = true;
          break;
        }
        if (dead) {
          close_conn(ready.fd);
          continue;
        }
        if (!pump(c)) {
          close_conn(ready.fd);
          continue;
        }
      }
    }

    if (woke) {
      // Adopt newly assigned connections.
      std::deque<int> incoming;
      {
        MutexLock lock(worker.mutex);
        incoming.swap(worker.incoming);
      }
      for (int fd : incoming) {
        auto conn = std::make_unique<Conn>(fd);
        Conn& c = *conn;
        worker.conns.emplace(fd, std::move(conn));
        driver.Open(c);
        if (!pump(c)) close_conn(fd);
      }
      // Push completed-replan announcements into every session.
      if (worker.announce.exchange(false, std::memory_order_acq_rel)) {
        std::vector<int> dead;
        for (auto& [fd, conn] : worker.conns) {
          driver.DeliverAnnouncements(*conn);
          if (!conn->outbuf.empty() || conn->close_after_flush) {
            if (!flush(*conn) ||
                (conn->close_after_flush && conn->outbuf.empty())) {
              dead.push_back(fd);
              continue;
            }
            update_interest(*conn);
          }
        }
        for (int fd : dead) close_conn(fd);
      }
    }
  }

  // Forced shutdown: every remaining connection still reports its
  // completion (accepted == completed is the server's join condition).
  for (auto& [fd, conn] : worker.conns) finish_conn(*conn);
  worker.conns.clear();

  // Connections adopted but never picked up (Stop won the race against
  // this worker's wake) must be closed and reported too, or the
  // server's accepted == completed join would wait forever on sessions
  // that no longer exist. No new adoptions can arrive concurrently:
  // Adopt refuses once Stop has set stopping_, and both run under
  // start_mutex_.
  std::deque<int> orphaned;
  {
    MutexLock lock(worker.mutex);
    orphaned.swap(worker.incoming);
  }
  for (int fd : orphaned) {
    ::close(fd);
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (options_.on_session_done) options_.on_session_done(SessionDone{});
  }
}

}  // namespace dphist::runtime
