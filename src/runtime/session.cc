#include "runtime/session.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace dphist::runtime {
namespace {

/// Error prefix matching the workload-file loader so `serve --queries`
/// diagnostics are byte-compatible with the pre-runtime path.
std::string LinePrefix(std::int64_t line) {
  return "query line " + std::to_string(line) + ": ";
}

/// True when `token` is an integer literal (optionally signed) and
/// nothing else — used to tell a bare range line from a command typo.
bool LooksLikeInteger(const std::string& token) {
  std::size_t i = (!token.empty() && (token[0] == '-' || token[0] == '+'))
                      ? 1
                      : 0;
  if (i >= token.size()) return false;
  for (; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return false;
  }
  return true;
}

}  // namespace

SessionReader::SessionReader(std::istream& in, std::int64_t domain_size)
    : in_(in), domain_size_(domain_size) {}

Result<bool> ParseSessionLine(std::string_view line_view,
                              std::int64_t domain_size,
                              std::int64_t line_number,
                              SessionCommand* out) {
  // Commas are separators everywhere, as in workload files. The copy
  // also buys a mutable, NUL-independent buffer for istringstream.
  std::string line(line_view);
  for (char& c : line) {
    if (c == ',') c = ' ';
  }
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return false;  // blank
  if (line[first] == '#') return false;          // comment
  std::istringstream fields(line);
  std::string head;
  fields >> head;

  SessionCommand command;
  if (head == "stats") {
    command.verb = SessionVerb::kStats;
    *out = std::move(command);
    return true;
  }
  if (head == "replan") {
    command.verb = SessionVerb::kReplan;
    *out = std::move(command);
    return true;
  }
  if (head == "quit") {
    command.verb = SessionVerb::kQuit;
    *out = std::move(command);
    return true;
  }

  auto read_range = [&](Interval* range_out) -> Status {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!(fields >> lo) || !(fields >> hi)) {
      return Status::InvalidArgument(LinePrefix(line_number) +
                                     "expected \"lo hi\"");
    }
    if (lo > hi || lo < 0 || hi >= domain_size) {
      return Status::OutOfRange(LinePrefix(line_number) +
                                "range out of bounds");
    }
    *range_out = Interval(lo, hi);
    return Status::Ok();
  };

  if (head == "q") {
    command.verb = SessionVerb::kQuery;
    command.ranges.resize(1, Interval(0, 0));
    Status s = read_range(&command.ranges[0]);
    if (!s.ok()) return s;
    *out = std::move(command);
    return true;
  }
  if (head == "qb") {
    std::int64_t k = 0;
    if (!(fields >> k) || k < 1) {
      return Status::InvalidArgument(LinePrefix(line_number) +
                                     "qb expects a positive batch size");
    }
    if (k > kMaxSessionBatch) {
      return Status::InvalidArgument(LinePrefix(line_number) +
                                     "qb batch size exceeds " +
                                     std::to_string(kMaxSessionBatch));
    }
    command.verb = SessionVerb::kBatch;
    command.ranges.resize(static_cast<std::size_t>(k), Interval(0, 0));
    for (Interval& range : command.ranges) {
      Status s = read_range(&range);
      if (!s.ok()) return s;
    }
    *out = std::move(command);
    return true;
  }
  if (LooksLikeInteger(head)) {
    // Bare workload-file line: "lo hi". Re-parse from the start so the
    // diagnostics match the explicit-verb path.
    std::istringstream bare(line);
    fields.swap(bare);
    command.verb = SessionVerb::kQuery;
    command.ranges.resize(1, Interval(0, 0));
    Status s = read_range(&command.ranges[0]);
    if (!s.ok()) return s;
    *out = std::move(command);
    return true;
  }
  // Matches the historical non-numeric-token diagnostic closely enough
  // that scripts looking for "line N" keep working.
  return Status::InvalidArgument("query line " + std::to_string(line_number) +
                                 ": unknown command \"" + head + "\"");
}

Result<SessionCommand> SessionReader::Next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    SessionCommand command;
    Result<bool> parsed = ParseSessionLine(line, domain_size_, line_, &command);
    if (!parsed.ok()) return parsed.status();
    if (!parsed.value()) continue;  // blank or comment
    return command;
  }
  SessionCommand quit;
  quit.verb = SessionVerb::kQuit;
  return quit;
}

Result<std::vector<SessionCommand>> ReadSessionScript(
    std::istream& in, std::int64_t domain_size) {
  SessionReader reader(in, domain_size);
  std::vector<SessionCommand> script;
  while (true) {
    Result<SessionCommand> command = reader.Next();
    if (!command.ok()) return command.status();
    if (command.value().verb == SessionVerb::kQuit) return script;
    script.push_back(std::move(command).value());
  }
}

void AppendAnswerLine(double value, std::string* out) {
  // std::to_chars(general, 15) is specified as printf "%.15g" in the "C"
  // locale — the exact bytes the former ostream path (defaultfloat,
  // precision 15) produced, without the per-value num_put/locale
  // machinery that dominated text-protocol profiles.
  char buffer[32];
  const std::to_chars_result result = std::to_chars(
      buffer, buffer + sizeof(buffer), value, std::chars_format::general, 15);
  out->append(buffer, result.ptr);
  out->push_back('\n');
}

void SessionWriter::Answers(const double* values, std::size_t count) {
  // One reusable buffer, one stream write for the whole batch.
  buffer_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    AppendAnswerLine(values[i], &buffer_);
  }
  out_.write(buffer_.data(),
             static_cast<std::streamsize>(buffer_.size()));
}

void SessionWriter::BatchReceipt(std::size_t count, std::uint64_t epoch) {
  out_ << "# batch n=" << count << " epoch=" << epoch << "\n";
}

void SessionWriter::PlanNote(const planner::Plan& plan, std::uint64_t epoch,
                             const char* reason) {
  const std::streamsize old_precision = out_.precision(6);
  out_ << "# planned strategy=" << StrategyKindName(plan.options.strategy)
       << " shards=" << plan.options.shards << " epoch=" << epoch
       << " reason=" << reason
       << " predicted_mean_var=" << plan.predicted_mean_variance << "\n";
  out_.precision(old_precision);
}

void SessionWriter::Comment(const std::string& text) {
  out_ << "# " << text << "\n";
}

void SessionWriter::Error(const Status& status) {
  out_ << "error: " << status.ToString() << "\n";
}

void SessionWriter::Flush() { out_.flush(); }

}  // namespace dphist::runtime
