// Fixed worker pool driving a readiness loop over non-blocking sessions.
//
// The PR 5 transport parked one thread per connection in a blocking
// read — fine for 4 clients, fatal for 10k (stacks, scheduler churn,
// and a thread-per-idle-REPL cost model). SessionPool replaces that:
// a fixed set of worker threads, each owning an epoll instance (poll(2)
// on non-Linux builds) over a shard of the accepted connections. Every
// connection is a state machine, not a thread:
//
//   read buffer -> parse (text line or binary frame) -> execute against
//   the shared QueryService via a SessionExecutor -> write buffer,
//   flushed as the socket accepts bytes (EPOLLOUT backpressure: a slow
//   reader pauses its own reads once its write buffer passes the high
//   watermark, and only its own).
//
// Connections are sharded round-robin across workers at adoption and
// never migrate, so a connection's entire lifetime runs on one thread —
// no per-connection locks anywhere. Cross-thread signals (adoption,
// stop, completed-replan announcements) arrive over a self-pipe each
// worker keeps in its poll set.
//
// Both protocols run through the same state machine. A connection opens
// in text mode (auth line first when a token is configured, then the
// "# serving ..." banner); the first post-banner byte selects the
// protocol — wire::kMagic switches to length-prefixed frames (see
// wire_format.h), anything else is the line-text REPL, byte-for-byte
// unchanged. Completed replans are PUSHED: the EpochManager's
// announcement notifier wakes every worker, which drains each session's
// subscription into its write buffer ("# planned ..." lines or PLAN
// frames) without waiting for the client's next command.
//
// `quit`/GOODBYE intentionally drains any in-flight replan before the
// final receipt (deterministic transcript endings — the CI smoke greps
// for announcements before the receipt). The drain blocks one worker
// for the tail of one snapshot build; with several workers the other
// shards keep serving.

#ifndef DPHIST_RUNTIME_SESSION_POOL_H_
#define DPHIST_RUNTIME_SESSION_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "runtime/epoch_manager.h"
#include "runtime/serving_loop.h"
#include "service/query_service.h"

namespace dphist::runtime {

/// Everything the server wants to know about one finished session.
struct SessionDone {
  SessionSummary summary;
  /// Non-OK when the session ended in error (no published snapshot,
  /// protocol violation, refused auth handshake).
  Status status = Status::Ok();
  std::uint64_t write_errors = 0;
  bool peer_reset = false;
  bool auth_failed = false;
  bool binary = false;  // negotiated the frame protocol
};

struct SessionPoolOptions {
  /// Worker threads, each driving its own readiness loop over its shard
  /// of the connections. Clamped to at least 1.
  int workers = 2;
  /// Non-empty enables the auth handshake: the first line of every
  /// connection must be "auth <token>" (constant-time compare) before
  /// the banner is sent; failures are counted, answered with one error
  /// line, and closed.
  std::string auth_token;
  /// Invoked on the worker thread after each connection closes (for any
  /// reason, including a forced Stop()).
  std::function<void(const SessionDone&)> on_session_done;
};

/// The worker pool. Thread-safe: Adopt/NotifyAnnouncements/Stop may be
/// called from any thread.
class SessionPool {
 public:
  SessionPool(QueryService& service, EpochManager& manager,
              const SessionPoolOptions& options);
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Spawns the workers.
  Status Start();

  /// Hands a freshly accepted connection to a worker (round-robin). The
  /// pool owns the fd from here on. Returns false (and closes the fd)
  /// when the pool is stopping.
  bool Adopt(int fd);

  /// Wakes every worker to drain completed-replan announcements into
  /// session write buffers. Bound to
  /// EpochManager::SetAnnouncementNotifier by the server.
  void NotifyAnnouncements();

  /// Force-closes every connection (their on_session_done callbacks
  /// still fire) and joins the workers. Idempotent.
  void Stop();

  /// Live connections across all workers (approximate — adoption and
  /// closes race it).
  std::int64_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;

  void WorkerLoop(Worker& worker);

  QueryService& service_;
  EpochManager& manager_;
  const SessionPoolOptions options_;
  Mutex start_mutex_;
  /// Created by Start, joined by Stop — both under start_mutex_, so a
  /// Stop racing another Stop (or the destructor) can never join the
  /// same std::thread twice, and an Adopt racing Start can never read a
  /// half-built vector. Worker loops never touch this vector (each gets
  /// its own Worker& at spawn), so holding the lock across the joins
  /// cannot deadlock.
  std::vector<std::unique_ptr<Worker>> workers_
      DPHIST_GUARDED_BY(start_mutex_);
  std::atomic<std::uint64_t> next_worker_{0};
  std::atomic<std::int64_t> active_{0};
  std::atomic<bool> stopping_{false};
  bool started_ DPHIST_GUARDED_BY(start_mutex_) = false;
};

/// Constant-time equality for secrets: the comparison time depends only
/// on the lengths, never on where the first mismatch sits.
bool ConstantTimeEquals(std::string_view a, std::string_view b);

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_SESSION_POOL_H_
