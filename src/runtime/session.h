// Streaming session line protocol for the serving runtime.
//
// One grammar powers every way queries reach a long-lived server —
// `dphist serve --stdin` (interactive REPL), scripted transcripts piped
// through stdin, and the classic workload files `serve --queries`
// consumed before this subsystem existed. A session is a sequence of
// newline-terminated commands over any std::istream:
//
//   lo hi                answer one range (bare workload-file form;
//                        commas work: "lo,hi")
//   q lo hi              same, explicit verb
//   qb k lo hi lo hi ... answer k ranges as ONE batch: all k are served
//                        against the single snapshot current at the
//                        batch's start (one epoch, one release)
//   stats                report serving counters as a "# stats ..." line
//   replan               force a synchronous replan + republish (spends
//                        a fresh epsilon)
//   quit                 end the session (EOF is an implicit quit)
//   # anything           comment, ignored; blank lines are ignored
//
// SessionReader parses commands one at a time with line-numbered errors
// (the same messages the workload-file loader produced, so `serve
// --queries` diagnostics are unchanged). SessionWriter owns the answer
// and "# ..." report formatting shared by the streaming REPL and the
// batch driver, so transcripts from either mode look alike.

#ifndef DPHIST_RUNTIME_SESSION_H_
#define DPHIST_RUNTIME_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "domain/interval.h"
#include "planner/planner.h"

namespace dphist::runtime {

/// What a session line asks the server to do.
enum class SessionVerb {
  kQuery,   // one range (bare "lo hi" or "q lo hi")
  kBatch,   // "qb k ..." — k ranges answered as one single-epoch batch
  kStats,   // "stats"
  kReplan,  // "replan"
  kQuit,    // "quit" or end of stream
};

/// One parsed command.
struct SessionCommand {
  SessionVerb verb = SessionVerb::kQuit;
  /// kQuery: exactly one range; kBatch: the k ranges; empty otherwise.
  std::vector<Interval> ranges;
};

/// Parses one already-extracted line (no trailing newline) as a session
/// command. The non-blocking transport uses this directly: its readiness
/// loop splits its receive buffer on '\n' and never owns an istream.
/// Returns false when the line carries no command (blank or comment);
/// true fills `out`. A malformed line is a Status naming `line_number`
/// (1-based), with diagnostics byte-identical to SessionReader's.
Result<bool> ParseSessionLine(std::string_view line,
                              std::int64_t domain_size,
                              std::int64_t line_number, SessionCommand* out);

/// Largest `qb` batch a session line may carry; a cap, not a target — it
/// only exists so a malformed count cannot ask the server to reserve
/// gigabytes.
inline constexpr std::int64_t kMaxSessionBatch = 1 << 20;

/// Incremental command parser over a line stream.
class SessionReader {
 public:
  /// See kMaxSessionBatch (kept as a member name for existing callers).
  static constexpr std::int64_t kMaxBatch = kMaxSessionBatch;

  /// Ranges are validated against [0, domain_size).
  SessionReader(std::istream& in, std::int64_t domain_size);

  /// Parses the next command; kQuit at end of stream. A malformed line
  /// returns a Status naming the 1-based line number and leaves the
  /// reader usable (the next call parses the following line), so an
  /// interactive session can report the error and keep serving.
  Result<SessionCommand> Next();

  /// 1-based number of the last line consumed.
  std::int64_t line() const { return line_; }

 private:
  std::istream& in_;
  std::int64_t domain_size_;
  std::int64_t line_ = 0;
};

/// Reads a whole session script up front (the `serve --queries` file
/// path): every command until quit/EOF, failing on the first malformed
/// line. Control commands (stats/replan) are legal in files too.
Result<std::vector<SessionCommand>> ReadSessionScript(
    std::istream& in, std::int64_t domain_size);

/// Appends one answer line ("%.15g" + '\n') to `out` via std::to_chars
/// — byte-identical to the ostream formatting the transcripts have
/// always used, minus the per-value locale machinery. Shared by
/// SessionWriter and the binary client's ANSWERS rendering so both
/// transcripts stay identical.
void AppendAnswerLine(double value, std::string* out);

/// Formats session output: answer lines at full precision plus the
/// "# ..." report lines both serving modes share.
class SessionWriter {
 public:
  explicit SessionWriter(std::ostream& out) : out_(out) {}

  /// One answer per line, 15 significant digits (round-trips every
  /// integral count a double holds exactly). Formatted with
  /// std::to_chars into one reusable buffer (see AppendAnswerLine) and
  /// written with a single stream write per batch.
  void Answers(const double* values, std::size_t count);

  /// "# batch n=K epoch=E" — the single-epoch receipt after a `qb`.
  void BatchReceipt(std::size_t count, std::uint64_t epoch);

  /// "# planned strategy=S shards=K epoch=E reason=R
  ///  predicted_mean_var=V" — emitted whenever a (re)plan publishes.
  void PlanNote(const planner::Plan& plan, std::uint64_t epoch,
                const char* reason);

  /// "# <text>"
  void Comment(const std::string& text);

  /// "error: <status>" — interactive sessions keep serving after this.
  void Error(const Status& status);

  void Flush();

  std::ostream& stream() { return out_; }

 private:
  std::ostream& out_;
  /// Reused across Answers calls; steady-state batches allocate nothing.
  std::string buffer_;
};

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_SESSION_H_
