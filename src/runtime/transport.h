// Socket transport for the serving runtime: real network traffic into
// the stream-agnostic session layer.
//
// SocketServer binds a loopback/TCP listening socket and runs one
// accept loop; every accepted connection gets its own thread running
// RunStreamingSession (the same grammar and executor as `serve
// --stdin`) over an iostream wrapped around the connection's fd. All
// connections share ONE QueryService and ONE EpochManager:
//
//   - each connection owns a private SessionWriter over its own socket
//     stream, so per-connection transcripts can never interleave
//     mid-line;
//   - each session holds its own EpochManager subscription, so every
//     client sees every completed replan announcement ("# planned ..."
//     lines) exactly once — one client draining the completion queue
//     cannot steal another's;
//   - queries from every connection feed the same observed-traffic
//     profile, so the every-N and drift triggers fire on the aggregate
//     load, and a republish lands for all clients at once (each
//     in-flight batch still finishes under the epoch it started on).
//
// A session opens with the same "# serving ..." banner as the stdin
// REPL and closes with a "# served N queries ..." receipt, so a socket
// transcript reads exactly like a local one.
//
// SocketStream / ConnectLoopback are exposed for clients (tests, the
// socket bench, and anything else that wants to drive a server from
// C++ without shelling out).

#ifndef DPHIST_RUNTIME_TRANSPORT_H_
#define DPHIST_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <streambuf>
#include <thread>
#include <vector>

#include "common/status.h"
#include "runtime/epoch_manager.h"
#include "runtime/serving_loop.h"
#include "service/query_service.h"

namespace dphist::runtime {

/// Buffered std::streambuf over a connected socket fd (both
/// directions). Does not own the fd.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

  /// Flushes that failed to deliver every pending byte. A session whose
  /// answers were silently dropped by a dying connection used to look
  /// identical to a clean one; this counter is what `stats` and the
  /// server's final receipt surface instead.
  std::uint64_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }
  /// True once a read saw a clean FIN (recv returned 0): the peer
  /// finished and hung up on purpose.
  bool orderly_eof() const {
    return orderly_eof_.load(std::memory_order_relaxed);
  }
  /// True once a read failed with ECONNRESET: the peer vanished
  /// mid-conversation rather than closing.
  bool peer_reset() const {
    return peer_reset_.load(std::memory_order_relaxed);
  }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  /// Writes every pending output byte (looping over short writes).
  bool FlushOut();

  static constexpr std::size_t kBufSize = 1 << 13;
  int fd_;
  char in_buf_[kBufSize];
  char out_buf_[kBufSize];
  /// Atomics: bumped on the session thread, read by the server's stats
  /// aggregation from other threads.
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<bool> orderly_eof_{false};
  std::atomic<bool> peer_reset_{false};
};

/// Owning iostream over a connected socket: closes the fd on
/// destruction, flushing buffered output first.
class SocketStream : public std::iostream {
 public:
  explicit SocketStream(int fd);
  ~SocketStream() override;

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  int fd() const { return fd_; }

  /// See FdStreamBuf::write_errors / orderly_eof / peer_reset.
  std::uint64_t write_errors() const { return buf_.write_errors(); }
  bool orderly_eof() const { return buf_.orderly_eof(); }
  bool peer_reset() const { return buf_.peer_reset(); }

  /// Shuts the socket down in both directions, unblocking a thread
  /// parked in a read. Safe to call from another thread.
  void Shutdown();

 private:
  FdStreamBuf buf_;
  int fd_;
};

/// Connects to 127.0.0.1:`port` and returns a ready client stream
/// (TCP_NODELAY set: the session protocol is request/response).
Result<std::unique_ptr<SocketStream>> ConnectLoopback(int port);

struct TransportOptions {
  /// Port to listen on; 0 asks the kernel for an ephemeral port (read
  /// the resolved one from SocketServer::port()).
  int port = 0;
  /// Listen backlog.
  int backlog = 16;
  /// Accept at most this many connections, then stop accepting and let
  /// WaitUntilStopped return once they finish; 0 = accept until Stop().
  std::int64_t max_sessions = 0;
  /// Per-session serving-loop knobs (interactive sessions answer on
  /// their connection thread; concurrency comes from having many
  /// connections plus the manager's replan worker).
  ServingLoopOptions loop;
};

/// Loopback/TCP listener fanning connections into streaming sessions
/// over one shared QueryService + EpochManager. All public methods are
/// thread-safe.
class SocketServer {
 public:
  /// The service must already have a published snapshot (PublishInitial
  /// first) before Start() accepts the first connection.
  SocketServer(QueryService& service, EpochManager& manager,
               const TransportOptions& options);

  /// Stops and joins everything.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds 127.0.0.1:port, listens, and starts the accept loop.
  Status Start();

  /// The bound port (resolves port 0); 0 before Start().
  int port() const;

  /// Stops accepting, shuts down every active connection, and joins
  /// the accept loop and all session threads. Idempotent.
  void Stop();

  /// Blocks until the accept loop has exited (Stop() was called, or
  /// max_sessions connections were accepted) and every session thread
  /// has finished. Does NOT force active sessions to end.
  void WaitUntilStopped();

  struct Stats {
    std::uint64_t accepted = 0;        // connections accepted
    std::uint64_t completed = 0;       // sessions ended (incl. errors)
    std::uint64_t session_errors = 0;  // sessions that ended in error
    std::uint64_t queries = 0;         // ranges answered across sessions
    std::uint64_t write_errors = 0;    // flushes that lost output bytes
    std::uint64_t peer_resets = 0;     // sessions ended by ECONNRESET
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<SocketStream> stream);

  /// Waits for the accept loop to exit, then joins it and every session
  /// thread. Safe to call concurrently (each thread is joined once).
  void JoinAll();

  QueryService& service_;
  EpochManager& manager_;
  const TransportOptions options_;

  mutable std::mutex mutex_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool stopping_ = false;
  /// True once the accept loop has exited (and before Start()), so
  /// JoinAll never waits on a loop that was never started.
  bool accept_done_ = true;
  std::condition_variable accept_done_cv_;
  std::thread accept_thread_;
  std::vector<std::thread> session_threads_;
  /// Streams of live connections, so Stop() can unblock their reads.
  std::vector<std::weak_ptr<SocketStream>> active_streams_;
  Stats stats_;
};

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_TRANSPORT_H_
