// Socket transport for the serving runtime: real network traffic into
// the stream-agnostic session layer.
//
// SocketServer binds a listening socket (loopback by default; see
// TransportOptions::bind_addr) and runs one accept loop; accepted
// connections are handed to a fixed-size SessionPool of worker threads
// driving an epoll/poll readiness loop (see session_pool.h) — a
// connection is a state machine in a worker's shard, never a dedicated
// thread, so thousands of idle REPLs cost file descriptors, not stacks.
// All connections share ONE QueryService and ONE EpochManager:
//
//   - each connection owns a private write buffer and SessionWriter, so
//     per-connection transcripts can never interleave mid-line;
//   - each session holds its own EpochManager subscription, and
//     completed replans are PUSHED into every session's write buffer
//     (the manager's announcement notifier wakes the pool), so every
//     client sees every replan announcement exactly once — without
//     waiting for its own next command;
//   - queries from every connection feed the same observed-traffic
//     profile, so the every-N and drift triggers fire on the aggregate
//     load, and a republish lands for all clients at once (each
//     in-flight batch still finishes under the epoch it started on).
//
// Two protocols share the port. A session opens with the same
// "# serving ..." banner as the stdin REPL; a client whose first
// post-banner byte is wire::kMagic switches to the length-prefixed
// binary frame protocol (wire_format.h — batched queries in, batched
// answers + epoch receipts out, replan announcements as push frames),
// anything else speaks the line-text protocol byte-for-byte unchanged
// and closes with the "# served N queries ..." receipt.
//
// SocketStream / ConnectLoopback / ConnectTcp are exposed for text
// clients (tests, the socket bench, bash-style scripts driven from
// C++); BinaryClient is the frame-protocol equivalent.

#ifndef DPHIST_RUNTIME_TRANSPORT_H_
#define DPHIST_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "runtime/epoch_manager.h"
#include "runtime/serving_loop.h"
#include "runtime/session_pool.h"
#include "runtime/wire_format.h"
#include "service/query_service.h"

namespace dphist::runtime {

/// Buffered std::streambuf over a connected socket fd (both
/// directions). Does not own the fd.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

  /// Flushes that failed to deliver every pending byte. A session whose
  /// answers were silently dropped by a dying connection used to look
  /// identical to a clean one; this counter is what `stats` and the
  /// server's final receipt surface instead.
  std::uint64_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }
  /// True once a read saw a clean FIN (recv returned 0): the peer
  /// finished and hung up on purpose.
  bool orderly_eof() const {
    return orderly_eof_.load(std::memory_order_relaxed);
  }
  /// True once a read failed with ECONNRESET: the peer vanished
  /// mid-conversation rather than closing.
  bool peer_reset() const {
    return peer_reset_.load(std::memory_order_relaxed);
  }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  /// Writes every pending output byte (looping over short writes).
  bool FlushOut();

  static constexpr std::size_t kBufSize = 1 << 13;
  int fd_;
  char in_buf_[kBufSize];
  char out_buf_[kBufSize];
  /// Atomics: bumped on the session thread, read by the server's stats
  /// aggregation from other threads.
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<bool> orderly_eof_{false};
  std::atomic<bool> peer_reset_{false};
};

/// Owning iostream over a connected socket: closes the fd on
/// destruction, flushing buffered output first.
class SocketStream : public std::iostream {
 public:
  explicit SocketStream(int fd);
  ~SocketStream() override;

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  int fd() const { return fd_; }

  /// See FdStreamBuf::write_errors / orderly_eof / peer_reset.
  std::uint64_t write_errors() const { return buf_.write_errors(); }
  bool orderly_eof() const { return buf_.orderly_eof(); }
  bool peer_reset() const { return buf_.peer_reset(); }

  /// Shuts the socket down in both directions, unblocking a thread
  /// parked in a read. Safe to call from another thread.
  void Shutdown();

 private:
  FdStreamBuf buf_;
  int fd_;
};

/// Connects to 127.0.0.1:`port` and returns a ready client stream
/// (TCP_NODELAY set: the session protocol is request/response).
Result<std::unique_ptr<SocketStream>> ConnectLoopback(int port);

/// Connects to a numeric IPv4 address (no DNS — "10.0.0.7", not a
/// hostname) on `port`.
Result<std::unique_ptr<SocketStream>> ConnectTcp(const std::string& host,
                                                 int port);

/// Blocking binary-protocol client: reads the text banner, performs the
/// auth handshake when a token is given, sends the negotiation magic
/// byte, and consumes the HELLO frame. Thereafter any number of
/// requests may be pipelined (Send* then one Read* per expected reply;
/// the server answers in order). Not thread-safe.
class BinaryClient {
 public:
  /// A frame with owned payload bytes (safe past the next read).
  struct OwnedFrame {
    wire::FrameType type = wire::FrameType::kNote;
    std::string payload;
  };

  /// `host` as in ConnectTcp; empty auth_token skips the handshake.
  static Result<std::unique_ptr<BinaryClient>> Connect(
      const std::string& host, int port, const std::string& auth_token = "");

  /// The server's negotiation ack (protocol version, domain, epoch).
  const wire::HelloFrame& hello() const { return hello_; }
  /// The text banner line (without the trailing newline).
  const std::string& banner() const { return banner_; }

  /// Request senders; buffered until Flush (pipelining: send many, then
  /// flush once).
  void SendQuery(std::uint64_t id, std::uint64_t expect_epoch,
                 const Interval* ranges, std::size_t count);
  void SendStats(std::uint64_t id);
  void SendReplan(std::uint64_t id);
  void SendGoodbye();
  Status Flush();

  /// Blocks for the next frame of any type (pushes included).
  Result<OwnedFrame> ReadFrame();

  /// Reads until a reply frame (ANSWERS / STATS_TEXT / ERROR / BYE)
  /// arrives; push frames (PLAN / NOTE) encountered on the way are
  /// appended to `pushes` when non-null, dropped otherwise.
  Result<OwnedFrame> ReadReply(std::vector<OwnedFrame>* pushes = nullptr);

 private:
  explicit BinaryClient(std::unique_ptr<SocketStream> stream)
      : stream_(std::move(stream)) {}

  std::unique_ptr<SocketStream> stream_;
  std::string banner_;
  wire::HelloFrame hello_;
  std::string sendbuf_;
  std::string recvbuf_;
};

struct TransportOptions {
  /// Port to listen on; 0 asks the kernel for an ephemeral port (read
  /// the resolved one from SocketServer::port()).
  int port = 0;
  /// Numeric IPv4 address to bind. The default stays loopback-only;
  /// binding anything else ("0.0.0.0", a NIC address) exposes the
  /// server off-host — pair it with auth_token.
  std::string bind_addr = "127.0.0.1";
  /// Listen backlog.
  int backlog = 128;
  /// Accept at most this many connections, then stop accepting and let
  /// WaitUntilStopped return once they finish; 0 = accept until Stop().
  std::int64_t max_sessions = 0;
  /// Worker threads in the session pool.
  int workers = 2;
  /// Non-empty requires every connection to open with "auth <token>"
  /// (constant-time compare) before anything is served; failed
  /// handshakes are counted and closed.
  std::string auth_token;
  /// Per-session serving-loop knobs (kept for API compatibility;
  /// pool sessions answer on their worker thread, so only fields that
  /// make sense per-session apply).
  ServingLoopOptions loop;
};

/// TCP listener fanning connections into the worker-pool readiness loop
/// over one shared QueryService + EpochManager. All public methods are
/// thread-safe.
class SocketServer {
 public:
  /// The service must already have a published snapshot (PublishInitial
  /// first) before Start() accepts the first connection.
  SocketServer(QueryService& service, EpochManager& manager,
               const TransportOptions& options);

  /// Stops and joins everything.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds bind_addr:port, listens, starts the worker pool and the
  /// accept loop, and registers the announcement push notifier.
  Status Start();

  /// The bound port (resolves port 0); 0 before Start().
  int port() const;

  /// Stops accepting, force-closes every active connection, and joins
  /// the accept loop and the worker pool. Idempotent.
  void Stop();

  /// Blocks until the accept loop has exited (Stop() was called, or
  /// max_sessions connections were accepted) and every accepted
  /// connection has completed. Does NOT force active sessions to end.
  void WaitUntilStopped();

  struct Stats {
    std::uint64_t accepted = 0;        // connections accepted
    std::uint64_t completed = 0;       // sessions ended (incl. errors)
    std::uint64_t session_errors = 0;  // sessions that ended in error
    std::uint64_t auth_failures = 0;   // handshakes refused and closed
    std::uint64_t queries = 0;         // ranges answered across sessions
    std::uint64_t batches = 0;         // qb commands + QUERY frames
    std::uint64_t cache_hits = 0;      // per-session cache hits, summed
    std::uint64_t replans_announced = 0;  // PLAN frames + "# planned"
    std::uint64_t text_sessions = 0;      // completed line-text sessions
    std::uint64_t binary_sessions = 0;    // completed frame sessions
    std::uint64_t write_errors = 0;    // flushes that lost output bytes
    std::uint64_t peer_resets = 0;     // sessions ended by ECONNRESET
  };
  Stats stats() const;

 private:
  void AcceptLoop();

  QueryService& service_;
  EpochManager& manager_;
  const TransportOptions options_;

  mutable Mutex mutex_;
  /// Created by Start() and never replaced while the accept loop or the
  /// workers run; users snapshot the raw pointer under mutex_ and call
  /// it unlocked (SessionPool is itself thread-safe).
  std::unique_ptr<SessionPool> pool_ DPHIST_GUARDED_BY(mutex_);
  int listen_fd_ DPHIST_GUARDED_BY(mutex_) = -1;
  int port_ DPHIST_GUARDED_BY(mutex_) = 0;
  bool stopping_ DPHIST_GUARDED_BY(mutex_) = false;
  bool started_ DPHIST_GUARDED_BY(mutex_) = false;
  /// True once the accept loop has exited (and before Start()), so
  /// waiters never block on a loop that was never started.
  bool accept_done_ DPHIST_GUARDED_BY(mutex_) = true;
  CondVar state_cv_;
  /// Assigned by Start, swapped out (for the join) by exactly one Stop.
  std::thread accept_thread_ DPHIST_GUARDED_BY(mutex_);
  Stats stats_ DPHIST_GUARDED_BY(mutex_);
};

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_TRANSPORT_H_
