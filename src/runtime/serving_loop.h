// The serving runtime's command loop: one executor for every way a
// session reaches the server.
//
// RunStreamingSession drives an interactive (REPL) session: commands are
// parsed and answered one at a time, output is flushed after every
// command, parse errors are reported and survived, and completed
// asynchronous replans are announced as "# planned ..." lines between
// commands. RunScriptedSession drives a pre-parsed script (the
// `serve --queries FILE` path): runs of consecutive single-range query
// commands are coalesced into one flat workload and fanned out over
// worker threads (the PR 1-3 batched path; a slice boundary can never
// split a one-range command, so each stays single-epoch), `qb` batches
// execute as one atomic QueryBatch to keep their one-epoch contract,
// control commands execute between runs, and any error aborts the
// script — the strictness workload files always had.
//
// Both entry points — and the non-blocking socket state machines, which
// call the SessionExecutor directly from a readiness loop instead of
// through a blocking read — answer queries through the same QueryService
// calls and report through the same SessionWriter formats, so a
// transcript from one mode reads like the other; after every command (or
// coalesced run) the EpochManager is polled, which is what lets the
// every-N and drift triggers fire mid-session.

#ifndef DPHIST_RUNTIME_SERVING_LOOP_H_
#define DPHIST_RUNTIME_SERVING_LOOP_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/epoch_manager.h"
#include "runtime/session.h"
#include "service/query_service.h"

namespace dphist::runtime {

struct ServingLoopOptions {
  /// Worker threads for a scripted session's coalesced query runs
  /// (contiguous slices, each one single-epoch QueryBatch). Interactive
  /// sessions answer on the calling thread — concurrency there comes
  /// from the manager's replan worker.
  std::int64_t threads = 1;
  /// When set, the `stats` command appends " write_errors=N" with this
  /// callback's value — the transport binds it to the session's own
  /// stream so a client can ask whether any of its answers were lost to
  /// a failed flush. Unset (stdin/file sessions) omits the field.
  std::function<std::uint64_t()> session_write_errors;
};

/// What a session did, for the final "# served ..." report and the
/// per-session `stats` fields (multi-tenant debugging: which tenant is
/// hammering the cache, which never saw a republish).
struct SessionSummary {
  std::uint64_t queries = 0;       // ranges answered
  std::uint64_t commands = 0;      // commands executed (incl. stats/replan)
  std::uint64_t parse_errors = 0;  // malformed lines survived (interactive)
  std::uint64_t replans_reported = 0;  // "# planned ..." lines / PLAN frames
  std::uint64_t last_epoch = 0;        // epoch of the last answered batch
  std::uint64_t batches = 0;     // qb commands / binary QUERY frames
  std::uint64_t cache_hits = 0;  // of `queries`, answered from the cache
  /// Distinct consecutive epoch values this session answered under (an
  /// A->B->A sequence counts 3: the session really crossed two swaps).
  std::uint64_t epochs_seen = 0;
};

/// "# serving n=... epoch=... strategy=... shards=... eps=..." — the
/// greeting every session (stdin REPL or socket connection) opens with.
void WriteServingBanner(SessionWriter& writer, const Snapshot& snapshot);

/// Shared command executor: every way a session reaches the server —
/// blocking REPL, scripted file, or a non-blocking socket state machine
/// — funnels through one of these. It owns the session's EpochManager
/// subscription (so concurrent sessions each see every completed replan
/// exactly once) and the per-session counters. The text entry points
/// (Execute / PollAndReport) render through the SessionWriter; the
/// binary frame path uses the raw entry points (AnswerBatch / StatsText
/// / PollAndTake) and encodes the same data itself.
class SessionExecutor {
 public:
  SessionExecutor(
      SessionWriter& writer, QueryService& service, EpochManager& manager,
      std::function<std::uint64_t()> session_write_errors = nullptr);

  SessionSummary& summary() { return summary_; }

  /// Label reported as `protocol=` in the stats reply ("text" default;
  /// the transport sets "binary" after a successful negotiation).
  void set_protocol(const char* protocol) { protocol_ = protocol; }
  const char* protocol() const { return protocol_; }

  /// Answers a contiguous run of ranges (a coalesced script segment or a
  /// single command's ranges) and prints the answer lines. An
  /// out-of-domain range (or answering before the first publish) is a
  /// Status — reported as a session error line, never an abort — and
  /// prints no answers.
  Status AnswerRun(const Interval* ranges, std::size_t count,
                   std::int64_t threads);

  /// Executes one control or query command interactively. Returns a
  /// non-OK status only for errors (the caller decides whether they are
  /// fatal); kQuit is handled by the caller.
  Status Execute(const SessionCommand& command, bool interactive);

  /// Fires due triggers and announces any replans completed since the
  /// last call (including asynchronous ones from earlier commands).
  void PollAndReport();

  // ---- raw (writer-free) entry points for the binary frame path ----

  /// Answers `count` ranges as one single-epoch batch into `answers`
  /// (resized to `count`), updating every per-session counter exactly as
  /// a `qb` command would. Returns the batch's epoch, or a Status for an
  /// out-of-domain range / missing publish (the transport encodes it as
  /// an error frame; counters are untouched on failure).
  Result<std::uint64_t> AnswerBatch(const Interval* ranges, std::size_t count,
                                    std::vector<double>* answers);

  /// The body of the `stats` reply (no leading "# ").
  std::string StatsText();

  /// Manual replan with this session as the reporter: its own queue is
  /// skipped by the broadcast, the outcome comes back here to encode.
  Result<ReplanOutcome> ManualReplan();

  /// Fires due triggers, then drains this session's announcement queue
  /// (oldest first) without writing anything.
  std::vector<ReplanOutcome> PollAndTake();

  /// Drains the queue without polling — the notifier-wakeup path, where
  /// the trigger already ran on another thread.
  std::vector<ReplanOutcome> TakeAnnouncements();

  /// The comment text for a non-republished outcome (drift kept /
  /// failed lifecycle replan) — one wording shared by the text writer
  /// path and the binary NOTE frame.
  static std::string OutcomeComment(const ReplanOutcome& outcome);

 private:
  void ReportOutcome(const ReplanOutcome& outcome);
  /// Folds an answered batch's epoch into epochs_seen/last_epoch.
  void NoteAnswerEpoch(std::uint64_t epoch);

  SessionWriter& writer_;
  QueryService& service_;
  EpochManager& manager_;
  EpochSubscription subscription_;
  std::function<std::uint64_t()> session_write_errors_;
  const char* protocol_ = "text";
  std::uint64_t last_answer_epoch_ = 0;  // 0 = nothing answered yet
  SessionSummary summary_;
  std::vector<double> answers_;  // reused across commands
};

/// Interactive session: reads commands from `in` until quit/EOF.
/// Requires a published snapshot (PublishInitial first). The session
/// holds its own EpochManager subscription, so any number of concurrent
/// sessions may share one service + manager.
Result<SessionSummary> RunStreamingSession(std::istream& in,
                                           SessionWriter& writer,
                                           QueryService& service,
                                           EpochManager& manager,
                                           const ServingLoopOptions& options);

/// Scripted session: executes `script` (see ReadSessionScript), failing
/// on the first command error. Requires a published snapshot.
Result<SessionSummary> RunScriptedSession(
    const std::vector<SessionCommand>& script, SessionWriter& writer,
    QueryService& service, EpochManager& manager,
    const ServingLoopOptions& options);

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_SERVING_LOOP_H_
