// The serving runtime's command loop: one executor for every way a
// session reaches the server.
//
// RunStreamingSession drives an interactive (REPL) session: commands are
// parsed and answered one at a time, output is flushed after every
// command, parse errors are reported and survived, and completed
// asynchronous replans are announced as "# planned ..." lines between
// commands. RunScriptedSession drives a pre-parsed script (the
// `serve --queries FILE` path): runs of consecutive single-range query
// commands are coalesced into one flat workload and fanned out over
// worker threads (the PR 1-3 batched path; a slice boundary can never
// split a one-range command, so each stays single-epoch), `qb` batches
// execute as one atomic QueryBatch to keep their one-epoch contract,
// control commands execute between runs, and any error aborts the
// script — the strictness workload files always had.
//
// Both entry points answer queries through the same QueryService calls
// and report through the same SessionWriter, so a transcript from one
// mode reads like the other; after every command (or coalesced run) the
// EpochManager is polled, which is what lets the every-N and drift
// triggers fire mid-session.

#ifndef DPHIST_RUNTIME_SERVING_LOOP_H_
#define DPHIST_RUNTIME_SERVING_LOOP_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "runtime/epoch_manager.h"
#include "runtime/session.h"
#include "service/query_service.h"

namespace dphist::runtime {

struct ServingLoopOptions {
  /// Worker threads for a scripted session's coalesced query runs
  /// (contiguous slices, each one single-epoch QueryBatch). Interactive
  /// sessions answer on the calling thread — concurrency there comes
  /// from the manager's replan worker.
  std::int64_t threads = 1;
  /// When set, the `stats` command appends " write_errors=N" with this
  /// callback's value — the transport binds it to the session's own
  /// stream so a client can ask whether any of its answers were lost to
  /// a failed flush. Unset (stdin/file sessions) omits the field.
  std::function<std::uint64_t()> session_write_errors;
};

/// What a session did, for the final "# served ..." report.
struct SessionSummary {
  std::uint64_t queries = 0;       // ranges answered
  std::uint64_t commands = 0;      // commands executed (incl. stats/replan)
  std::uint64_t parse_errors = 0;  // malformed lines survived (interactive)
  std::uint64_t replans_reported = 0;  // "# planned ..." lines emitted
  std::uint64_t last_epoch = 0;        // epoch of the last answered batch
};

/// "# serving n=... epoch=... strategy=... shards=... eps=..." — the
/// greeting every session (stdin REPL or socket connection) opens with.
void WriteServingBanner(SessionWriter& writer, const Snapshot& snapshot);

/// Interactive session: reads commands from `in` until quit/EOF.
/// Requires a published snapshot (PublishInitial first). The session
/// holds its own EpochManager subscription, so any number of concurrent
/// sessions may share one service + manager.
Result<SessionSummary> RunStreamingSession(std::istream& in,
                                           SessionWriter& writer,
                                           QueryService& service,
                                           EpochManager& manager,
                                           const ServingLoopOptions& options);

/// Scripted session: executes `script` (see ReadSessionScript), failing
/// on the first command error. Requires a published snapshot.
Result<SessionSummary> RunScriptedSession(
    const std::vector<SessionCommand>& script, SessionWriter& writer,
    QueryService& service, EpochManager& manager,
    const ServingLoopOptions& options);

}  // namespace dphist::runtime

#endif  // DPHIST_RUNTIME_SERVING_LOOP_H_
