// Quadtree over a 2-D grid: the multi-dimensional extension of the H
// query that Appendix B poses as future work.
//
// The grid (padded to a 2^m x 2^m square) is mapped to the leaves of a
// branching-factor-4 TreeLayout through the Morton (Z-order) curve: a
// quadtree node covering a 2^j x 2^j block corresponds exactly to one
// TreeLayout node whose 1-D leaf range is that block's contiguous Morton
// index range. Theorem 3's hierarchical inference therefore applies
// *unchanged* — only the geometry (rectangle decomposition, sensitivity =
// tree height) is new.

#ifndef DPHIST_TREE_QUADTREE_H_
#define DPHIST_TREE_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "domain/grid.h"
#include "tree/tree_layout.h"

namespace dphist {

/// Interleaves the bits of (row, col) into a Morton index. Requires both
/// coordinates < 2^31.
std::int64_t MortonEncode(std::int64_t row, std::int64_t col);

/// Inverse of MortonEncode.
void MortonDecode(std::int64_t index, std::int64_t* row, std::int64_t* col);

/// Quadtree geometry over a rows x cols grid (padded to a square power
/// of two).
class QuadtreeLayout {
 public:
  /// Builds the quadtree covering at least rows x cols cells.
  QuadtreeLayout(std::int64_t rows, std::int64_t cols);

  /// The underlying k=4 TreeLayout (node ids shared with inference).
  const TreeLayout& tree() const { return tree_; }

  /// Side of the padded square, a power of two.
  std::int64_t side() const { return side_; }

  /// Requested grid shape.
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Tree height (= sensitivity of the quadtree counting query).
  std::int64_t height() const { return tree_.height(); }

  /// Total number of quadtree nodes.
  std::int64_t node_count() const { return tree_.node_count(); }

  /// The square block of cells covered by node v.
  Rect NodeRect(std::int64_t v) const;

  /// Tree leaf id of the cell (row, col) in the padded square.
  std::int64_t LeafNode(std::int64_t row, std::int64_t col) const;

  /// Inverse of LeafNode: the cell of a leaf node.
  void LeafCell(std::int64_t v, std::int64_t* row, std::int64_t* col) const;

  /// Minimal set of disjoint quadtree nodes whose blocks union exactly to
  /// `rect` (which must lie inside the padded square). Worst case
  /// O(side) nodes — the perimeter effect that makes multi-dimensional
  /// hierarchies costlier than 1-D ones.
  std::vector<std::int64_t> DecomposeRect(const Rect& rect) const;

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t side_;
  TreeLayout tree_;
};

}  // namespace dphist

#endif  // DPHIST_TREE_QUADTREE_H_
