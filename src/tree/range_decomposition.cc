#include "tree/range_decomposition.h"

#include "common/check.h"

namespace dphist {
namespace {

void DecomposeInto(const TreeLayout& tree, std::int64_t node,
                   const Interval& range, std::vector<std::int64_t>* out) {
  Interval covered = tree.NodeRange(node);
  if (!covered.Overlaps(range)) return;
  if (range.Covers(covered)) {
    out->push_back(node);
    return;
  }
  DPHIST_DCHECK(!tree.IsLeaf(node));
  std::int64_t first = tree.FirstChild(node);
  for (std::int64_t i = 0; i < tree.branching(); ++i) {
    DecomposeInto(tree, first + i, range, out);
  }
}

}  // namespace

std::vector<std::int64_t> DecomposeRange(const TreeLayout& tree,
                                         const Interval& range) {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < tree.leaf_count(),
                   "range outside the tree's (padded) domain");
  std::vector<std::int64_t> out;
  DecomposeInto(tree, 0, range, &out);
  return out;
}

std::int64_t MaxDecompositionSize(const TreeLayout& tree) {
  // The degenerate single-node tree still decomposes the full range into
  // one node.
  std::int64_t bound = 2 * (tree.branching() - 1) * (tree.height() - 1);
  return bound > 0 ? bound : 1;
}

}  // namespace dphist
