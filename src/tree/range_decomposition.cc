#include "tree/range_decomposition.h"

namespace dphist {

void DecomposeRangeInto(const TreeLayout& tree, const Interval& range,
                        std::vector<std::int64_t>* out) {
  DPHIST_CHECK(out != nullptr);
  out->clear();
  ForEachRangeNode(tree, range,
                   [out](std::int64_t node) { out->push_back(node); });
}

std::vector<std::int64_t> DecomposeRange(const TreeLayout& tree,
                                         const Interval& range) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(MaxDecompositionSize(tree)));
  DecomposeRangeInto(tree, range, &out);
  return out;
}

std::int64_t MaxDecompositionSize(const TreeLayout& tree) {
  // The degenerate single-node tree still decomposes the full range into
  // one node.
  std::int64_t bound = 2 * (tree.branching() - 1) * (tree.height() - 1);
  return bound > 0 ? bound : 1;
}

}  // namespace dphist
