// Implicit perfect k-ary interval tree (the tree T of Section 4).
//
// Each node corresponds to an interval of the domain; the root covers
// everything and each node has k children splitting its interval into k
// equal parts; leaves are unit intervals. Nodes are numbered 0..m-1 in
// BFS (breadth-first) order — exactly the order the paper uses to turn the
// tree into the query sequence H. The tree is "implicit": parent/child/
// interval relations are arithmetic on node ids, no pointers.
//
// Domains whose size is not a power of k are padded up to the next power;
// padded leaf positions simply hold zero counts, which leaves every range
// sum over the original domain unchanged.

#ifndef DPHIST_TREE_TREE_LAYOUT_H_
#define DPHIST_TREE_TREE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "domain/interval.h"

namespace dphist {

/// Geometry of a perfect k-ary tree over a (padded) domain.
class TreeLayout {
 public:
  /// Builds the tree over a domain of `leaf_count` positions (>= 1) with
  /// branching factor `branching` (>= 2). The domain is padded to the next
  /// power of `branching`.
  TreeLayout(std::int64_t leaf_count, std::int64_t branching);

  /// Branching factor k.
  std::int64_t branching() const { return branching_; }

  /// Height ell: the number of nodes on a root-to-leaf path (the paper's
  /// convention, Section 4: ell = log_k n + 1).
  std::int64_t height() const { return height_; }

  /// Padded leaf count, k^(height-1).
  std::int64_t leaf_count() const { return leaf_count_; }

  /// The caller's original (pre-padding) domain size.
  std::int64_t requested_leaf_count() const { return requested_leaf_count_; }

  /// Total node count m = (k^ell - 1) / (k - 1).
  std::int64_t node_count() const { return node_count_; }

  /// True for node 0.
  bool IsRoot(std::int64_t v) const { return v == 0; }

  /// True iff v is on the leaf level.
  bool IsLeaf(std::int64_t v) const;

  /// Parent id. Requires v != root.
  std::int64_t Parent(std::int64_t v) const;

  /// Id of the first child. Requires !IsLeaf(v).
  std::int64_t FirstChild(std::int64_t v) const;

  /// The k child ids of v. Requires !IsLeaf(v).
  std::vector<std::int64_t> Children(std::int64_t v) const;

  /// Depth of v: root is 0, leaves are height-1.
  std::int64_t Depth(std::int64_t v) const;

  /// First node id at `depth` (BFS order).
  std::int64_t LevelStart(std::int64_t depth) const;

  /// Number of nodes at `depth`, k^depth.
  std::int64_t LevelSize(std::int64_t depth) const;

  /// Leaf positions covered by node v, as an interval over the padded
  /// domain [0, leaf_count).
  Interval NodeRange(std::int64_t v) const;

  /// Node id of the leaf at domain position `position`.
  std::int64_t LeafNode(std::int64_t position) const;

  /// Domain position of leaf node v. Requires IsLeaf(v).
  std::int64_t LeafPosition(std::int64_t v) const;

  /// Number of leaves under node v: k^(height-1-depth).
  std::int64_t LeavesUnder(std::int64_t v) const;

 private:
  std::int64_t branching_;
  std::int64_t requested_leaf_count_;
  std::int64_t leaf_count_;
  std::int64_t height_;
  std::int64_t node_count_;
  /// level_start_[d] = id of the first node at depth d; has height_+1
  /// entries, the last being node_count_.
  std::vector<std::int64_t> level_start_;
};

}  // namespace dphist

#endif  // DPHIST_TREE_TREE_LAYOUT_H_
