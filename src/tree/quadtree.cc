#include "tree/quadtree.h"

#include "common/check.h"

namespace dphist {
namespace {

std::int64_t SpreadBits(std::int64_t v) {
  // Interleave zeros between the low 31 bits of v.
  std::uint64_t x = static_cast<std::uint64_t>(v) & 0x7fffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return static_cast<std::int64_t>(x);
}

std::int64_t CompactBits(std::int64_t v) {
  std::uint64_t x = static_cast<std::uint64_t>(v) & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<std::int64_t>(x);
}

}  // namespace

std::int64_t MortonEncode(std::int64_t row, std::int64_t col) {
  DPHIST_CHECK(row >= 0 && col >= 0);
  DPHIST_CHECK(row < (std::int64_t{1} << 31) &&
               col < (std::int64_t{1} << 31));
  return (SpreadBits(row) << 1) | SpreadBits(col);
}

void MortonDecode(std::int64_t index, std::int64_t* row, std::int64_t* col) {
  DPHIST_CHECK(index >= 0 && row != nullptr && col != nullptr);
  *row = CompactBits(index >> 1);
  *col = CompactBits(index);
}

QuadtreeLayout::QuadtreeLayout(std::int64_t rows, std::int64_t cols)
    : rows_(rows),
      cols_(cols),
      side_([&] {
        DPHIST_CHECK_MSG(rows > 0 && cols > 0, "grid must be non-empty");
        std::int64_t side = 1;
        while (side < rows || side < cols) side *= 2;
        return side;
      }()),
      tree_(side_ * side_, 4) {
  // A perfect k=4 tree over side^2 Morton-ordered leaves: every node's
  // 1-D leaf interval is exactly one 2^j x 2^j block.
  DPHIST_CHECK(tree_.leaf_count() == side_ * side_);
}

Rect QuadtreeLayout::NodeRect(std::int64_t v) const {
  Interval span = tree_.NodeRange(v);
  // Block side: sqrt of the number of leaves under the node.
  std::int64_t leaves = span.Length();
  std::int64_t block_side = 1;
  while (block_side * block_side < leaves) block_side *= 2;
  std::int64_t row0 = 0, col0 = 0;
  MortonDecode(span.lo(), &row0, &col0);
  return Rect(row0, row0 + block_side - 1, col0, col0 + block_side - 1);
}

std::int64_t QuadtreeLayout::LeafNode(std::int64_t row,
                                      std::int64_t col) const {
  DPHIST_CHECK(row >= 0 && row < side_ && col >= 0 && col < side_);
  return tree_.LeafNode(MortonEncode(row, col));
}

void QuadtreeLayout::LeafCell(std::int64_t v, std::int64_t* row,
                              std::int64_t* col) const {
  MortonDecode(tree_.LeafPosition(v), row, col);
}

namespace {

void DecomposeRectInto(const QuadtreeLayout& quad, std::int64_t node,
                       const Rect& rect, std::vector<std::int64_t>* out) {
  Rect covered = quad.NodeRect(node);
  if (!covered.Overlaps(rect)) return;
  if (rect.Covers(covered)) {
    out->push_back(node);
    return;
  }
  DPHIST_DCHECK(!quad.tree().IsLeaf(node));
  std::int64_t first = quad.tree().FirstChild(node);
  for (std::int64_t c = 0; c < 4; ++c) {
    DecomposeRectInto(quad, first + c, rect, out);
  }
}

}  // namespace

std::vector<std::int64_t> QuadtreeLayout::DecomposeRect(
    const Rect& rect) const {
  DPHIST_CHECK_MSG(rect.row_lo() >= 0 && rect.row_hi() < side_ &&
                       rect.col_lo() >= 0 && rect.col_hi() < side_,
                   "rect outside the (padded) grid");
  std::vector<std::int64_t> out;
  DecomposeRectInto(*this, 0, rect, &out);
  return out;
}

}  // namespace dphist
