#include "tree/tree_layout.h"

#include <algorithm>

#include "common/check.h"

namespace dphist {

TreeLayout::TreeLayout(std::int64_t leaf_count, std::int64_t branching)
    : branching_(branching), requested_leaf_count_(leaf_count) {
  DPHIST_CHECK_MSG(leaf_count >= 1, "tree needs at least one leaf");
  DPHIST_CHECK_MSG(branching >= 2, "branching factor must be >= 2");

  // Pad to the next power of k; height counts nodes on a root-leaf path.
  leaf_count_ = 1;
  height_ = 1;
  while (leaf_count_ < leaf_count) {
    DPHIST_CHECK_MSG(leaf_count_ <= (INT64_MAX / branching_),
                     "domain too large for this branching factor");
    leaf_count_ *= branching_;
    ++height_;
  }

  level_start_.resize(static_cast<std::size_t>(height_) + 1);
  std::int64_t start = 0;
  std::int64_t width = 1;
  for (std::int64_t d = 0; d < height_; ++d) {
    level_start_[static_cast<std::size_t>(d)] = start;
    start += width;
    width *= branching_;
  }
  level_start_[static_cast<std::size_t>(height_)] = start;
  node_count_ = start;
}

bool TreeLayout::IsLeaf(std::int64_t v) const {
  DPHIST_CHECK(v >= 0 && v < node_count_);
  return v >= level_start_[static_cast<std::size_t>(height_ - 1)];
}

std::int64_t TreeLayout::Parent(std::int64_t v) const {
  DPHIST_CHECK(v > 0 && v < node_count_);
  return (v - 1) / branching_;
}

std::int64_t TreeLayout::FirstChild(std::int64_t v) const {
  DPHIST_CHECK(!IsLeaf(v));
  return v * branching_ + 1;
}

std::vector<std::int64_t> TreeLayout::Children(std::int64_t v) const {
  std::int64_t first = FirstChild(v);
  std::vector<std::int64_t> out(static_cast<std::size_t>(branching_));
  for (std::int64_t i = 0; i < branching_; ++i) out[i] = first + i;
  return out;
}

std::int64_t TreeLayout::Depth(std::int64_t v) const {
  DPHIST_CHECK(v >= 0 && v < node_count_);
  auto it = std::upper_bound(level_start_.begin(), level_start_.end(), v);
  return static_cast<std::int64_t>(it - level_start_.begin()) - 1;
}

std::int64_t TreeLayout::LevelStart(std::int64_t depth) const {
  DPHIST_CHECK(depth >= 0 && depth < height_);
  return level_start_[static_cast<std::size_t>(depth)];
}

std::int64_t TreeLayout::LevelSize(std::int64_t depth) const {
  DPHIST_CHECK(depth >= 0 && depth < height_);
  return level_start_[static_cast<std::size_t>(depth) + 1] -
         level_start_[static_cast<std::size_t>(depth)];
}

Interval TreeLayout::NodeRange(std::int64_t v) const {
  std::int64_t depth = Depth(v);
  std::int64_t index_in_level = v - LevelStart(depth);
  std::int64_t width = leaf_count_;
  for (std::int64_t d = 0; d < depth; ++d) width /= branching_;
  return Interval(index_in_level * width, (index_in_level + 1) * width - 1);
}

std::int64_t TreeLayout::LeafNode(std::int64_t position) const {
  DPHIST_CHECK(position >= 0 && position < leaf_count_);
  return level_start_[static_cast<std::size_t>(height_ - 1)] + position;
}

std::int64_t TreeLayout::LeafPosition(std::int64_t v) const {
  DPHIST_CHECK(IsLeaf(v));
  return v - level_start_[static_cast<std::size_t>(height_ - 1)];
}

std::int64_t TreeLayout::LeavesUnder(std::int64_t v) const {
  std::int64_t depth = Depth(v);
  std::int64_t width = leaf_count_;
  for (std::int64_t d = 0; d < depth; ++d) width /= branching_;
  return width;
}

}  // namespace dphist
