// Minimal subtree decomposition of a range query.
//
// To answer c([x, y]) from the hierarchical sequence H, the natural
// strategy (Section 4.2) sums the fewest noisy sub-interval counts whose
// disjoint union equals [x, y]. This module computes that canonical
// decomposition: the unique minimal antichain of tree nodes covering the
// range, at most 2(k-1) nodes per level and none above the range's least
// common ancestor.
//
// Three entry points, fastest first:
//
//   ForEachRangeNode(tree, range, fn)   iterative visitor; zero heap
//                                       allocations, nodes are emitted in
//                                       increasing interval order.
//   DecomposeRangeInto(tree, range, out) fills a caller-owned vector
//                                       (clearing it first) so repeated
//                                       queries reuse one buffer.
//   DecomposeRange(tree, range)         legacy convenience wrapper that
//                                       returns a fresh vector.
//
// All three produce the same node sequence; the visitor is the engine the
// other two are built on.

#ifndef DPHIST_TREE_RANGE_DECOMPOSITION_H_
#define DPHIST_TREE_RANGE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "domain/interval.h"
#include "tree/tree_layout.h"

namespace dphist {

/// Deepest tree height supported by the allocation-free visitor. A k-ary
/// tree with k >= 2 over an int64 domain has at most 63 levels below the
/// root, so 64 path slots always suffice.
inline constexpr int kMaxTreeHeight = 64;

/// Visits the minimal decomposition of `range`: node ids whose subtree
/// ranges are disjoint and union exactly to `range`, in increasing
/// interval order (the same order the recursive formulation emits).
/// Performs no heap allocation. `range` must lie within
/// [0, tree.leaf_count()).
template <typename Fn>
void ForEachRangeNode(const TreeLayout& tree, const Interval& range,
                      Fn&& fn) {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < tree.leaf_count(),
                   "range outside the tree's (padded) domain");
  const std::int64_t k = tree.branching();
  const std::int64_t lo = range.lo();
  const std::int64_t hi = range.hi();

  // Descend to the least common ancestor: the deepest node whose interval
  // contains the whole range. Track the node's interval arithmetically
  // ([node_lo, node_lo + width - 1]) instead of calling NodeRange, which
  // would pay a binary search per level; child ids likewise use the BFS
  // identity first_child(v) = v*k + 1 to keep per-level checks out of the
  // hot loop. Every descent below is guarded by width > 1, so the ids
  // stay in range by construction.
  std::int64_t node = 0;
  std::int64_t node_lo = 0;
  std::int64_t width = tree.leaf_count();
  std::int64_t child_a = 0;
  std::int64_t child_b = 0;
  while (true) {
    if (lo == node_lo && hi == node_lo + width - 1) {
      fn(node);  // The range is exactly this subtree.
      return;
    }
    // width > 1 here: a unit node overlapping an in-bounds range is
    // covered by it and was handled above.
    const std::int64_t child_width = width / k;
    child_a = (lo - node_lo) / child_width;
    child_b = (hi - node_lo) / child_width;
    if (child_a != child_b) break;  // `node` is the LCA.
    node = node * k + 1 + child_a;
    node_lo += child_a * child_width;
    width = child_width;
  }

  const std::int64_t first = node * k + 1;
  const std::int64_t child_width = width / k;

  // Left fringe: walk from the LCA's boundary child down to the node whose
  // interval starts exactly at `lo`. The right siblings passed on the way
  // down are fully covered but must be emitted *after* deeper nodes to
  // keep increasing interval order, so remember them per level.
  struct SiblingRun {
    std::int64_t from;
    std::int64_t to;  // inclusive; from > to encodes an empty run
  };
  SiblingRun left_runs[kMaxTreeHeight];
  int left_depth = 0;
  std::int64_t v = first + child_a;
  std::int64_t v_lo = node_lo + child_a * child_width;
  std::int64_t v_width = child_width;
  while (v_lo < lo) {
    const std::int64_t w = v_width / k;
    const std::int64_t j = (lo - v_lo) / w;
    const std::int64_t fc = v * k + 1;
    DPHIST_DCHECK(left_depth < kMaxTreeHeight);
    left_runs[left_depth++] = SiblingRun{fc + j + 1, fc + k - 1};
    v = fc + j;
    v_lo += j * w;
    v_width = w;
  }
  fn(v);  // Starts at `lo`; covered because the range runs past its end.
  for (int d = left_depth - 1; d >= 0; --d) {
    for (std::int64_t u = left_runs[d].from; u <= left_runs[d].to; ++u) {
      fn(u);
    }
  }

  // Fully covered middle children of the LCA.
  for (std::int64_t c = child_a + 1; c < child_b; ++c) fn(first + c);

  // Right fringe, top-down: left siblings at each level precede the
  // deeper boundary node, so this is already in increasing order.
  v = first + child_b;
  v_lo = node_lo + child_b * child_width;
  v_width = child_width;
  while (v_lo + v_width - 1 > hi) {
    const std::int64_t w = v_width / k;
    const std::int64_t j = (hi - v_lo) / w;
    const std::int64_t fc = v * k + 1;
    for (std::int64_t c = 0; c < j; ++c) fn(fc + c);
    v = fc + j;
    v_lo += j * w;
    v_width = w;
  }
  fn(v);  // Ends at `hi`; covered because the range starts before it.
}

/// Clears `out` and fills it with the decomposition of `range`. Repeated
/// callers amortize the buffer: after the first call at full capacity no
/// further allocation happens.
void DecomposeRangeInto(const TreeLayout& tree, const Interval& range,
                        std::vector<std::int64_t>* out);

/// Node ids whose subtree ranges are disjoint and union exactly to `range`.
/// `range` must lie within [0, tree.leaf_count()).
std::vector<std::int64_t> DecomposeRange(const TreeLayout& tree,
                                         const Interval& range);

/// Upper bound on the decomposition size for any range in this tree:
/// 2 (k-1) (ell-1) nodes (two "fringes" of at most k-1 nodes per level
/// below the root). Used by tests and by the error analysis of H-tilde.
std::int64_t MaxDecompositionSize(const TreeLayout& tree);

}  // namespace dphist

#endif  // DPHIST_TREE_RANGE_DECOMPOSITION_H_
