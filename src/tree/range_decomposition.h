// Minimal subtree decomposition of a range query.
//
// To answer c([x, y]) from the hierarchical sequence H, the natural
// strategy (Section 4.2) sums the fewest noisy sub-interval counts whose
// disjoint union equals [x, y]. This module computes that canonical
// decomposition: the unique minimal antichain of tree nodes covering the
// range, at most 2(k-1) nodes per level and none above the range's least
// common ancestor.

#ifndef DPHIST_TREE_RANGE_DECOMPOSITION_H_
#define DPHIST_TREE_RANGE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "domain/interval.h"
#include "tree/tree_layout.h"

namespace dphist {

/// Node ids whose subtree ranges are disjoint and union exactly to `range`.
/// `range` must lie within [0, tree.leaf_count()).
std::vector<std::int64_t> DecomposeRange(const TreeLayout& tree,
                                         const Interval& range);

/// Upper bound on the decomposition size for any range in this tree:
/// 2 (k-1) (ell-1) nodes (two "fringes" of at most k-1 nodes per level
/// below the root). Used by tests and by the error analysis of H-tilde.
std::int64_t MaxDecompositionSize(const TreeLayout& tree);

}  // namespace dphist

#endif  // DPHIST_TREE_RANGE_DECOMPOSITION_H_
