#include "analysis/strategy_matrix.h"

#include <cmath>

#include "common/check.h"
#include "tree/tree_layout.h"

namespace dphist {

linalg::Matrix IdentityStrategy(std::int64_t domain_size) {
  DPHIST_CHECK(domain_size >= 1);
  return linalg::Matrix::Identity(static_cast<std::size_t>(domain_size));
}

linalg::Matrix HierarchicalStrategy(std::int64_t domain_size,
                                    std::int64_t branching) {
  TreeLayout tree(domain_size, branching);
  linalg::Matrix strategy(static_cast<std::size_t>(tree.node_count()),
                          static_cast<std::size_t>(domain_size));
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    Interval covered = tree.NodeRange(v);
    std::int64_t hi = std::min(covered.hi(), domain_size - 1);
    for (std::int64_t leaf = covered.lo(); leaf <= hi; ++leaf) {
      strategy(static_cast<std::size_t>(v),
               static_cast<std::size_t>(leaf)) = 1.0;
    }
  }
  return strategy;
}

linalg::Matrix WaveletStrategy(std::int64_t domain_size) {
  DPHIST_CHECK_MSG(domain_size >= 1 &&
                       (domain_size & (domain_size - 1)) == 0,
                   "wavelet strategy needs a power-of-two domain");
  const std::size_t n = static_cast<std::size_t>(domain_size);
  linalg::Matrix strategy(n, n);
  // Row 0: the base coefficient (global average, weight n): the query
  // W * (1/n) * sum = sum.
  for (std::size_t j = 0; j < n; ++j) strategy(0, j) = 1.0;
  // Detail rows: node at BFS index i covers a block of `size` leaves;
  // the raw coefficient is (avgL - avgR)/2 = sum over block of
  // (+1/size, -1/size); scaling by the weight (= size) gives +-1 entries.
  std::size_t level_start = 1;
  std::size_t block = n;
  while (level_start < n) {
    for (std::size_t i = level_start; i < 2 * level_start; ++i) {
      std::size_t offset = (i - level_start) * block;
      for (std::size_t j = 0; j < block / 2; ++j) {
        strategy(i, offset + j) = 1.0;
        strategy(i, offset + block / 2 + j) = -1.0;
      }
    }
    block /= 2;
    level_start *= 2;
  }
  return strategy;
}

double StrategyL1Sensitivity(const linalg::Matrix& strategy) {
  double worst = 0.0;
  for (std::size_t j = 0; j < strategy.cols(); ++j) {
    double column = 0.0;
    for (std::size_t i = 0; i < strategy.rows(); ++i) {
      column += std::abs(strategy(i, j));
    }
    worst = std::max(worst, column);
  }
  return worst;
}

double HierarchicalStrategySensitivity(std::int64_t domain_size,
                                       std::int64_t branching) {
  return static_cast<double>(TreeLayout(domain_size, branching).height());
}

double WaveletStrategySensitivity(std::int64_t domain_size) {
  DPHIST_CHECK_MSG(domain_size >= 1 &&
                       (domain_size & (domain_size - 1)) == 0,
                   "wavelet strategy needs a power-of-two domain");
  std::int64_t levels = 0;
  for (std::int64_t p = 1; p < domain_size; p *= 2) ++levels;
  return static_cast<double>(1 + levels);
}

Result<StrategyAnalyzer> StrategyAnalyzer::Create(
    const linalg::Matrix& strategy, double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  double sensitivity = StrategyL1Sensitivity(strategy);
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("strategy has an all-zero column");
  }
  linalg::Matrix gram = strategy.Transpose().Multiply(strategy);
  auto factor = linalg::CholeskyFactorization::Compute(gram);
  if (!factor.ok()) {
    return Status::InvalidArgument(
        "strategy is column-rank-deficient: " + factor.status().message());
  }
  return StrategyAnalyzer(static_cast<std::int64_t>(strategy.cols()),
                          sensitivity / epsilon, sensitivity,
                          std::move(factor).value());
}

double StrategyAnalyzer::WorkloadVariance(
    const linalg::Vector& workload) const {
  DPHIST_CHECK(workload.size() == static_cast<std::size_t>(domain_size_));
  linalg::Vector z = gram_.Solve(workload);
  return 2.0 * noise_scale_ * noise_scale_ * linalg::Dot(workload, z);
}

double StrategyAnalyzer::RangeVariance(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the strategy's domain");
  linalg::Vector workload(static_cast<std::size_t>(domain_size_), 0.0);
  for (std::int64_t i = range.lo(); i <= range.hi(); ++i) {
    workload[static_cast<std::size_t>(i)] = 1.0;
  }
  return WorkloadVariance(workload);
}

}  // namespace dphist
