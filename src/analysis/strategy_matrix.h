// The matrix-mechanism view of query strategies (Li, Hay, Rastogi,
// Miklau, McGregor — PODS 2010; the paper's reference [15] and the lens
// Section 6 uses to relate H to the wavelet technique).
//
// A *strategy* is a matrix A whose rows are the counting queries actually
// asked of the Laplace mechanism; the unknowns x are the unit counts.
// The mechanism returns y = A x + Lap(Delta(A)/eps)^m where Delta(A) is
// the L1 sensitivity (the maximum column absolute sum). Any workload
// query w (a row over the unit counts) is then answered by the OLS
// estimate w^T x_hat, whose variance is *exactly*
//
//     Var(w) = 2 (Delta(A)/eps)^2 * w^T (A^T A)^{-1} w.
//
// This module builds the strategy matrices for the paper's estimators
// (identity = L, hierarchical = H for any k, and the weighted Haar
// wavelet) and evaluates that closed form, giving noise-free "error
// tables" that the sampled experiments must match — and do (see
// strategy_matrix_test.cc and bench_matrix_mechanism).

#ifndef DPHIST_ANALYSIS_STRATEGY_MATRIX_H_
#define DPHIST_ANALYSIS_STRATEGY_MATRIX_H_

#include <cstdint>

#include "common/status.h"
#include "domain/interval.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace dphist {

/// The identity strategy: ask every unit count (the L query).
linalg::Matrix IdentityStrategy(std::int64_t domain_size);

/// The hierarchical strategy: one row per node of the k-ary interval
/// tree over the (padded) domain (the H query). Columns beyond the
/// domain size are dropped, matching padding-with-zeros semantics.
linalg::Matrix HierarchicalStrategy(std::int64_t domain_size,
                                    std::int64_t branching);

/// The Privelet strategy: the Haar basis with each row scaled by its
/// weight (W = block size), so that uniform per-row noise reproduces the
/// weighted noise of estimators/wavelet.h. Requires a power-of-two
/// domain.
linalg::Matrix WaveletStrategy(std::int64_t domain_size);

/// L1 sensitivity of a strategy: the maximum column absolute sum.
double StrategyL1Sensitivity(const linalg::Matrix& strategy);

/// Closed-form L1 sensitivity of HierarchicalStrategy(domain_size,
/// branching) without materializing it: every real leaf has exactly
/// `height` ancestors, so the sensitivity is the tree height at any
/// width. The recurrence oracle (planner/recurrence_oracle.h) relies on
/// this agreeing with StrategyL1Sensitivity of the built matrix.
double HierarchicalStrategySensitivity(std::int64_t domain_size,
                                       std::int64_t branching);

/// Closed-form L1 sensitivity of WaveletStrategy(domain_size): the base
/// row plus one detail row per dyadic level, 1 + log2(domain_size).
/// Requires a power-of-two domain.
double WaveletStrategySensitivity(std::int64_t domain_size);

/// Precomputed analyzer for one strategy at one epsilon.
class StrategyAnalyzer {
 public:
  /// Factorizes A^T A. Fails if the strategy does not have full column
  /// rank (some unit count would be unrecoverable).
  static Result<StrategyAnalyzer> Create(const linalg::Matrix& strategy,
                                         double epsilon);

  /// Exact expected squared error of the OLS answer to the range query
  /// c([lo, hi]) under this strategy.
  double RangeVariance(const Interval& range) const;

  /// Exact expected squared error for an arbitrary workload row.
  double WorkloadVariance(const linalg::Vector& workload) const;

  /// The strategy's L1 sensitivity.
  double sensitivity() const { return sensitivity_; }

  /// Domain size (columns of the strategy).
  std::int64_t domain_size() const { return domain_size_; }

 private:
  StrategyAnalyzer(std::int64_t domain_size, double noise_scale,
                   double sensitivity, linalg::CholeskyFactorization gram)
      : domain_size_(domain_size),
        noise_scale_(noise_scale),
        sensitivity_(sensitivity),
        gram_(std::move(gram)) {}

  std::int64_t domain_size_;
  double noise_scale_;
  double sensitivity_;
  linalg::CholeskyFactorization gram_;
};

}  // namespace dphist

#endif  // DPHIST_ANALYSIS_STRATEGY_MATRIX_H_
