// Closed-form error oracle for published snapshot configurations.
//
// The matrix-mechanism view (src/analysis/strategy_matrix.h) gives the
// *exact* expected squared error of every snapshot configuration the
// serving layer can publish, as long as the estimators stay linear
// (rounding and pruning off):
//
//   L~       Var(q) = 2 |q| / eps^2                       (identity OLS)
//   H~       Var(q) = |decomposition(q)| * 2 (ell/eps)^2  (subtree sum)
//   H-bar    Var(q) = OLS variance under the H strategy   (Theorem 3 ==
//                                                          least squares)
//   wavelet  Var(q) = OLS variance under the weighted Haar strategy
//
// Sharded snapshots compose exactly: shards draw independent noise, so a
// spanning range's variance is the sum of the clipped per-shard
// variances. VarianceOracle evaluates all of that. It serves two
// masters: the statistical conformance harness (tests/service/), which
// checks that empirical serving error lands on this closed form, and the
// cost-based planner (src/planner/planner.h), which uses the same math
// to *choose* a configuration before publishing — the paper's Section 4
// variance analysis turned into a query optimizer.
//
// The H-bar and wavelet OLS forms have two implementations: the Gram
// recurrences of planner/recurrence_oracle.h (O(branching * log width)
// per query, the default — exact at any width) and the dense Cholesky
// of analysis/strategy_matrix.h (O(width^3) setup, kept behind
// VarianceOracleOptions::use_dense_analyzer as the independent test
// oracle the recurrences are pinned against).

#ifndef DPHIST_PLANNER_VARIANCE_ORACLE_H_
#define DPHIST_PLANNER_VARIANCE_ORACLE_H_

#include <cstdint>
#include <map>
#include <memory>

#include "analysis/strategy_matrix.h"
#include "common/status.h"
#include "domain/interval.h"
#include "planner/recurrence_oracle.h"
#include "service/snapshot.h"

namespace dphist::planner {

/// Implementation knobs for the oracle (not part of what is evaluated —
/// every path computes the same closed form).
struct VarianceOracleOptions {
  /// Answer H-bar/wavelet through the dense Gram Cholesky instead of
  /// the recurrence closed forms. O(width^3) setup per distinct shard
  /// width — the planner caps it with max_analyzer_width. Exists so
  /// tests can pin the two implementations together and so benches can
  /// record the dense baseline.
  bool use_dense_analyzer = false;
};

/// Exact expected squared error of a Snapshot's range answers.
///
/// Only valid for the linear protocol: options.round_to_nonnegative_
/// integers and options.prune_nonpositive_subtrees must be false
/// (rounding/pruning are nonlinear post-processing with no closed form),
/// and options.strategy must be a concrete kind (not kAuto). Create
/// reports violations as a Status; the legacy constructor CHECK-fails.
class VarianceOracle {
 public:
  /// Validating factory. Fails (never aborts) on kAuto, the nonlinear
  /// protocol, non-positive epsilon, an empty domain, shards < 1, or
  /// branching < 2 where the strategy uses a tree.
  static Result<VarianceOracle> Create(
      const SnapshotOptions& options, std::int64_t domain_size,
      const VarianceOracleOptions& oracle_options = {});

  /// Convenience constructor for statically known-good configurations
  /// (tests, benches); CHECK-fails where Create would return an error.
  VarianceOracle(const SnapshotOptions& options, std::int64_t domain_size);

  /// Exact Var[answer(q) - truth(q)] for a snapshot published with these
  /// options over this domain. `q` must lie within [0, domain_size).
  double RangeVariance(const Interval& range) const;

  std::int64_t domain_size() const { return domain_size_; }
  std::int64_t shard_width() const { return shard_width_; }

 private:
  VarianceOracle(const SnapshotOptions& options,
                 const VarianceOracleOptions& oracle_options,
                 std::int64_t domain_size, std::int64_t shard_width)
      : options_(options),
        oracle_options_(oracle_options),
        domain_size_(domain_size),
        shard_width_(shard_width) {}

  /// Variance of one shard's answer to a shard-local interval, for a
  /// shard of `width` positions.
  double ShardVariance(std::int64_t width, const Interval& local) const;

  /// Lazily built per-width dense analyzer (use_dense_analyzer path).
  const StrategyAnalyzer& DenseAnalyzerFor(std::int64_t width) const;

  /// Lazily built per-width recurrence oracle (the default path).
  const RecurrenceOracle& RecurrenceFor(std::int64_t width) const;

  SnapshotOptions options_;
  VarianceOracleOptions oracle_options_;
  std::int64_t domain_size_;
  std::int64_t shard_width_;
  /// Shards come in at most two widths (the last may be narrower).
  mutable std::map<std::int64_t, std::unique_ptr<StrategyAnalyzer>>
      analyzers_;
  mutable std::map<std::int64_t, std::unique_ptr<RecurrenceOracle>>
      recurrences_;
};

/// Width of the widest per-shard strategy matrix evaluating `options`
/// over `domain_size` positions requires: the (ceil) shard width, padded
/// to a power of two for the wavelet (whose strategy matrix only exists
/// at power-of-two sizes). This is the exact width the dense analyzer
/// factorizes AND the recurrence oracle's analyzer_width(), so the cost
/// model's dense-path feasibility cap and both oracles can never
/// disagree.
std::int64_t MaxAnalyzerWidth(const SnapshotOptions& options,
                              std::int64_t domain_size);

/// Conservative relative half-width of a Monte-Carlo mean of `trials`
/// iid squared errors, at `z_score` standard deviations.
///
/// Every linear-protocol answer error X is a sum of independent Laplace
/// terms, whose excess kurtosis (3 for a single Laplace) can only shrink
/// under independent summation, so Var(X^2) <= 5 Var(X)^2. The mean of T
/// trials therefore has relative standard deviation at most sqrt(5/T),
/// and |empirical / exact - 1| <= z * sqrt(5/T) holds except with the
/// z-score's tail probability.
double SquaredErrorRelativeBound(std::int64_t trials, double z_score);

}  // namespace dphist::planner

#endif  // DPHIST_PLANNER_VARIANCE_ORACLE_H_
