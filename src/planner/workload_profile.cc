#include "planner/workload_profile.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace dphist::planner {

WorkloadProfile::WorkloadProfile(std::int64_t domain_size)
    : domain_size_(domain_size) {
  DPHIST_CHECK_MSG(domain_size_ >= 1, "domain must be non-empty");
}

void WorkloadProfile::AddQuery(const Interval& query) {
  DPHIST_CHECK_MSG(query.lo() >= 0 && query.hi() < domain_size_,
                   "query outside the profile's domain");
  AddLength(query.Length());
}

void WorkloadProfile::AddLength(std::int64_t length, double weight) {
  DPHIST_CHECK_MSG(length >= 1 && length <= domain_size_,
                   "length outside [1, domain_size]");
  DPHIST_CHECK_MSG(weight > 0.0, "weight must be positive");
  lengths_[length] += weight;
  total_weight_ += weight;
}

WorkloadProfile WorkloadProfile::GeometricSweep(std::int64_t domain_size) {
  WorkloadProfile profile(domain_size);
  for (std::int64_t length = 1; length < domain_size; length *= 2) {
    profile.AddLength(length);
  }
  profile.AddLength(domain_size);
  return profile;
}

Result<WorkloadProfile> WorkloadProfile::FromQueryFile(
    const std::string& path, std::int64_t domain_size) {
  Result<std::vector<Interval>> workload =
      LoadWorkloadFile(path, domain_size);
  if (!workload.ok()) return workload.status();
  WorkloadProfile profile(domain_size);
  for (const Interval& query : workload.value()) profile.AddQuery(query);
  return profile;
}

Result<std::vector<Interval>> LoadWorkloadFile(const std::string& path,
                                               std::int64_t domain_size) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open query file: " + path);
  }
  std::vector<Interval> workload;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    for (char& c : line) {
      if (c == ',') c = ' ';
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank line
    }
    std::istringstream fields(line);
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!(fields >> lo) || !(fields >> hi)) {
      return Status::InvalidArgument(
          "query line " + std::to_string(line_number) +
          ": expected \"lo hi\"");
    }
    if (lo > hi || lo < 0 || hi >= domain_size) {
      return Status::OutOfRange("query line " + std::to_string(line_number) +
                                ": range out of bounds");
    }
    workload.emplace_back(lo, hi);
  }
  return workload;
}

}  // namespace dphist::planner
