#include "planner/workload_profile.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace dphist::planner {

WorkloadProfile::WorkloadProfile(std::int64_t domain_size)
    : domain_size_(domain_size),
      heat_bin_width_((domain_size + static_cast<std::int64_t>(kHeatBins) -
                       1) /
                      static_cast<std::int64_t>(kHeatBins)) {
  DPHIST_CHECK_MSG(domain_size_ >= 1, "domain must be non-empty");
}

void WorkloadProfile::AddQuery(const Interval& query) {
  AddQueryWeighted(query, 1.0);
}

void WorkloadProfile::AddQueryWeighted(const Interval& query,
                                       double weight) {
  DPHIST_CHECK_MSG(query.lo() >= 0 && query.hi() < domain_size_,
                   "query outside the profile's domain");
  AddLength(query.Length(), weight);
  const std::int64_t midpoint = query.lo() + (query.hi() - query.lo()) / 2;
  heat_[HeatBin(midpoint)] += weight;
  heat_weight_ += weight;
}

std::size_t WorkloadProfile::HeatBin(std::int64_t position) const {
  return static_cast<std::size_t>(position / heat_bin_width_);
}

double WorkloadProfile::PositionHeat(std::int64_t position) const {
  DPHIST_CHECK_MSG(position >= 0 && position < domain_size_,
                   "position outside the profile's domain");
  if (heat_weight_ <= 0.0) return 0.0;
  return heat_[HeatBin(position)] / heat_weight_;
}

void WorkloadProfile::AddLength(std::int64_t length, double weight) {
  DPHIST_CHECK_MSG(length >= 1 && length <= domain_size_,
                   "length outside [1, domain_size]");
  DPHIST_CHECK_MSG(weight > 0.0, "weight must be positive");
  lengths_[length] += weight;
  total_weight_ += weight;
}

WorkloadProfile WorkloadProfile::GeometricSweep(std::int64_t domain_size) {
  WorkloadProfile profile(domain_size);
  for (std::int64_t length = 1; length < domain_size; length *= 2) {
    profile.AddLength(length);
  }
  profile.AddLength(domain_size);
  return profile;
}

Result<WorkloadProfile> WorkloadProfile::Restore(
    std::int64_t domain_size, std::map<std::int64_t, double> lengths,
    const std::array<double, kHeatBins>& heat) {
  if (domain_size < 1) {
    return Status::InvalidArgument("domain must be non-empty");
  }
  WorkloadProfile profile(domain_size);
  for (const auto& [length, weight] : lengths) {
    if (length < 1 || length > domain_size) {
      return Status::InvalidArgument(
          "persisted profile length outside [1, domain_size]");
    }
    if (weight <= 0.0) {
      return Status::InvalidArgument(
          "persisted profile weight must be positive");
    }
    profile.total_weight_ += weight;
  }
  profile.lengths_ = std::move(lengths);
  for (double bin : heat) {
    if (bin < 0.0) {
      return Status::InvalidArgument("persisted heat bin must be >= 0");
    }
    profile.heat_weight_ += bin;
  }
  profile.heat_ = heat;
  return profile;
}

Result<WorkloadProfile> WorkloadProfile::FromQueryFile(
    const std::string& path, std::int64_t domain_size) {
  Result<std::vector<Interval>> workload =
      LoadWorkloadFile(path, domain_size);
  if (!workload.ok()) return workload.status();
  WorkloadProfile profile(domain_size);
  for (const Interval& query : workload.value()) profile.AddQuery(query);
  return profile;
}

namespace {

/// splitmix64 finalizer: the deterministic replacement stream behind
/// QueryReservoir (no RNG object to seed or thread through).
std::uint64_t MixCount(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

QueryReservoir::QueryReservoir(std::size_t capacity) : capacity_(capacity) {
  sample_.reserve(capacity_);
}

void QueryReservoir::Observe(const Interval& query) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(query);  // within reserved capacity: no allocation
    return;
  }
  if (capacity_ == 0) return;
  // Algorithm R: admit the t-th query with probability capacity/t by
  // drawing a pseudo-uniform slot in [0, t) and keeping it only when the
  // slot lands inside the reservoir.
  const std::uint64_t slot = MixCount(seen_) % seen_;
  if (slot < capacity_) {
    sample_[static_cast<std::size_t>(slot)] = query;
  }
}

void QueryReservoir::AddTo(WorkloadProfile* profile) const {
  if (sample_.empty()) return;
  const double weight = static_cast<double>(seen_) /
                        static_cast<double>(sample_.size());
  const std::int64_t max_position = profile->domain_size() - 1;
  for (const Interval& query : sample_) {
    // Clamp to the profile's domain (a reservoir can outlive a domain
    // change in tests); in-domain queries pass through untouched, so the
    // profile keeps their exact lengths AND placements.
    const Interval clipped(std::min(query.lo(), max_position),
                           std::min(query.hi(), max_position));
    profile->AddQueryWeighted(clipped, weight);
  }
}

Result<std::vector<Interval>> LoadWorkloadFile(const std::string& path,
                                               std::int64_t domain_size) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open query file: " + path);
  }
  std::vector<Interval> workload;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    for (char& c : line) {
      if (c == ',') c = ' ';
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank line
    }
    std::istringstream fields(line);
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!(fields >> lo) || !(fields >> hi)) {
      return Status::InvalidArgument(
          "query line " + std::to_string(line_number) +
          ": expected \"lo hi\"");
    }
    if (lo > hi || lo < 0 || hi >= domain_size) {
      return Status::OutOfRange("query line " + std::to_string(line_number) +
                                ": range out of bounds");
    }
    workload.emplace_back(lo, hi);
  }
  return workload;
}

}  // namespace dphist::planner
