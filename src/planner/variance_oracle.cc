#include "planner/variance_oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "tree/range_decomposition.h"
#include "tree/tree_layout.h"

namespace dphist::planner {
namespace {

std::int64_t NextPowerOfTwo(std::int64_t n) {
  std::int64_t p = 1;
  while (p < n) p *= 2;
  return p;
}

Status ValidateOracleConfig(const SnapshotOptions& options,
                            std::int64_t domain_size) {
  if (domain_size < 1) {
    return Status::InvalidArgument("domain must be non-empty");
  }
  if (options.strategy == StrategyKind::kAuto) {
    return Status::InvalidArgument(
        "kAuto must be resolved by the planner before the closed form "
        "can be evaluated");
  }
  if (options.round_to_nonnegative_integers ||
      options.prune_nonpositive_subtrees) {
    return Status::InvalidArgument(
        "closed forms hold only for the linear protocol (rounding and "
        "pruning off)");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.branching < 2 &&
      (options.strategy == StrategyKind::kHTilde ||
       options.strategy == StrategyKind::kHBar)) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  return Status::Ok();
}

}  // namespace

Result<VarianceOracle> VarianceOracle::Create(
    const SnapshotOptions& options, std::int64_t domain_size,
    const VarianceOracleOptions& oracle_options) {
  Status valid = ValidateOracleConfig(options, domain_size);
  if (!valid.ok()) return valid;
  const std::int64_t requested = std::min(options.shards, domain_size);
  const std::int64_t shard_width =
      (domain_size + requested - 1) / requested;
  return VarianceOracle(options, oracle_options, domain_size, shard_width);
}

VarianceOracle::VarianceOracle(const SnapshotOptions& options,
                               std::int64_t domain_size)
    : options_(options), domain_size_(domain_size) {
  Status valid = ValidateOracleConfig(options, domain_size);
  DPHIST_CHECK_MSG(valid.ok(), valid.message().c_str());
  const std::int64_t requested = std::min(options_.shards, domain_size_);
  shard_width_ = (domain_size_ + requested - 1) / requested;
}

double VarianceOracle::RangeVariance(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the oracle's domain");
  // Independent shard noise: the spanning variance is the sum of the
  // clipped per-shard variances (mirrors Snapshot::RangeCount).
  double total = 0.0;
  const std::int64_t first = range.lo() / shard_width_;
  const std::int64_t last = range.hi() / shard_width_;
  for (std::int64_t s = first; s <= last; ++s) {
    const std::int64_t base = s * shard_width_;
    const std::int64_t width =
        std::min(shard_width_, domain_size_ - base);
    const std::int64_t lo = std::max(range.lo(), base);
    const std::int64_t hi =
        std::min({range.hi(), base + shard_width_ - 1, domain_size_ - 1});
    total += ShardVariance(width, Interval(lo - base, hi - base));
  }
  return total;
}

double VarianceOracle::ShardVariance(std::int64_t width,
                                     const Interval& local) const {
  const double eps = options_.epsilon;
  switch (options_.strategy) {
    case StrategyKind::kLTilde:
      // Sum of |q| independent Laplace(1/eps): 2 |q| / eps^2.
      return 2.0 * static_cast<double>(local.Length()) / (eps * eps);
    case StrategyKind::kHTilde: {
      // Decomposition sum of independent Laplace(ell/eps) node answers.
      TreeLayout tree(width, options_.branching);
      const std::int64_t nodes =
          static_cast<std::int64_t>(DecomposeRange(tree, local).size());
      const double scale = static_cast<double>(tree.height()) / eps;
      return static_cast<double>(nodes) * 2.0 * scale * scale;
    }
    case StrategyKind::kHBar:
    case StrategyKind::kWavelet:
      // Theorem 3 inference and Haar reconstruction are both exactly the
      // OLS estimate under their strategy matrix; the recurrence and the
      // dense factorization compute the same quantity.
      return oracle_options_.use_dense_analyzer
                 ? DenseAnalyzerFor(width).RangeVariance(local)
                 : RecurrenceFor(width).RangeVariance(local);
    case StrategyKind::kAuto:
      break;  // rejected at construction
  }
  DPHIST_CHECK_MSG(false, "unreachable: unknown StrategyKind");
  return 0.0;
}

const StrategyAnalyzer& VarianceOracle::DenseAnalyzerFor(
    std::int64_t width) const {
  auto it = analyzers_.find(width);
  if (it == analyzers_.end()) {
    linalg::Matrix strategy =
        options_.strategy == StrategyKind::kWavelet
            ? WaveletStrategy(NextPowerOfTwo(width))
            : HierarchicalStrategy(width, options_.branching);
    Result<StrategyAnalyzer> analyzer =
        StrategyAnalyzer::Create(strategy, options_.epsilon);
    DPHIST_CHECK_MSG(analyzer.ok(), "strategy analyzer construction failed");
    it = analyzers_
             .emplace(width, std::make_unique<StrategyAnalyzer>(
                                 std::move(analyzer).value()))
             .first;
  }
  return *it->second;
}

const RecurrenceOracle& VarianceOracle::RecurrenceFor(
    std::int64_t width) const {
  auto it = recurrences_.find(width);
  if (it == recurrences_.end()) {
    Result<RecurrenceOracle> oracle = RecurrenceOracle::Create(
        options_.strategy, width, options_.branching, options_.epsilon);
    // Construction validated everything Create checks, so a failure here
    // is a programming error, not an input error.
    DPHIST_CHECK_MSG(oracle.ok(), "recurrence oracle construction failed");
    it = recurrences_
             .emplace(width, std::make_unique<RecurrenceOracle>(
                                 std::move(oracle).value()))
             .first;
  }
  return *it->second;
}

std::int64_t MaxAnalyzerWidth(const SnapshotOptions& options,
                              std::int64_t domain_size) {
  DPHIST_CHECK_MSG(domain_size >= 1, "domain must be non-empty");
  DPHIST_CHECK_MSG(options.shards >= 1, "shards must be >= 1");
  const std::int64_t requested = std::min(options.shards, domain_size);
  const std::int64_t width = (domain_size + requested - 1) / requested;
  return options.strategy == StrategyKind::kWavelet ? NextPowerOfTwo(width)
                                                    : width;
}

double SquaredErrorRelativeBound(std::int64_t trials, double z_score) {
  DPHIST_CHECK_MSG(trials >= 1, "trials must be >= 1");
  return z_score * std::sqrt(5.0 / static_cast<double>(trials));
}

}  // namespace dphist::planner
