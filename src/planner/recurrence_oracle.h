// Closed-form evaluation of w^T (A^T A)^{-1} w for the strategies whose
// Gram matrix has exploitable structure — the paper's Section 4 variance
// recurrences turned into an O(branching * height) range-variance oracle.
//
// The dense route (analysis/strategy_matrix.h) materializes A, factorizes
// the width x width Gram matrix (O(width^3)) and back-substitutes a dense
// workload vector per query (O(width^2)). That is exact but caps the
// planner at --max-analyzer-width. Both strategies it serves admit exact
// closed forms:
//
//   H-bar (hierarchical strategy H, any branching k):
//     A^T A = G with G_ij = |common ancestors of leaves i and j|, i.e.
//     G = sum over tree nodes v of 1_v 1_v^T (1_v = indicator of the
//     real leaves under v; padded-only nodes are all-zero rows and drop
//     out). Solving G z = w row-by-row gives, for each leaf i,
//     sum_{v on path(i)} S_v = w_i where S_v is the subtree sum of z.
//     Writing t_v for the sum of S_u over strict ancestors u of v, both
//     the subtree sum and the subtree inner product are AFFINE in t_v:
//
//       S_v = alpha_v - beta_v t_v,   sum_{i under v} w_i z_i
//                                         = delta_v - gamma_v t_v,
//
//     with leaf seeds (alpha, beta, delta, gamma) = (w, 1, w^2, w) and
//     the one-step combination over children (A = sum alpha_c,
//     B = sum beta_c, Gamma = sum gamma_c, S = sum delta_c):
//
//       alpha = A / (1 + B)          beta  = B / (1 + B)
//       delta = S - Gamma * alpha    gamma = Gamma * (1 - beta)
//
//     At the root t = 0, so w^T G^{-1} w = delta_root. A range workload
//     only ever splits nodes on its two boundary paths; every other
//     subtree is either fully inside (w = 1) or fully outside (w = 0)
//     the range, and those tuples depend only on the subtree SHAPE.
//     Clipped (non-power) domains have at most one partial subtree per
//     depth (the ancestors of the last real leaf), so all shapes are
//     precomputed per depth and a query costs O(branching * height).
//
//   Wavelet (Privelet weighted Haar, power-of-two padded width P):
//     the strategy's rows are mutually orthogonal, so A^T A has the rows
//     as eigenvectors with eigenvalues |r|^2 and
//
//       w^T (A^T A)^{-1} w = sum_r (w . r)^2 / |r|^4.
//
//     For a range workload the base row contributes len^2 / P^2 and a
//     detail row of block size b contributes ((cL - cR)/b)^2 where
//     cL/cR count range positions in the block's halves — zero unless
//     the block straddles a range endpoint, leaving O(log P) terms.
//
// Sensitivities are the known column sums: tree height for H, and
// 1 + log2(P) for the weighted Haar (estimators/wavelet.h), so
//
//   Var(w) = 2 (Delta / eps)^2 * w^T (A^T A)^{-1} w
//
// matches StrategyAnalyzer::RangeVariance exactly (the property suite in
// tests/planner/recurrence_oracle_test.cc pins them together to 1e-9).

#ifndef DPHIST_PLANNER_RECURRENCE_ORACLE_H_
#define DPHIST_PLANNER_RECURRENCE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "domain/interval.h"
#include "service/snapshot.h"

namespace dphist::planner {

/// Exact O(branching * height) range-variance oracle for one strategy
/// over one (shard) width. Immutable after Create; no per-query
/// allocation.
class RecurrenceOracle {
 public:
  /// True for the strategies whose Gram quadratic form this oracle can
  /// evaluate (kHBar at any branching, kWavelet).
  static bool Supports(StrategyKind kind);

  /// Builds the per-depth shape tables for `kind` over `width` real
  /// positions. The wavelet pads to the next power of two internally,
  /// mirroring MaxAnalyzerWidth and the dense analyzer. `branching` is
  /// used by kHBar only. Fails on unsupported kinds or invalid
  /// parameters; never CHECK-fails.
  static Result<RecurrenceOracle> Create(StrategyKind kind,
                                         std::int64_t width,
                                         std::int64_t branching,
                                         double epsilon);

  /// Exact Var[answer(q) - truth(q)] for the local range `q` within
  /// [0, width): 2 (Delta/eps)^2 * GramQuadraticForm(q). Equals
  /// StrategyAnalyzer::RangeVariance for the same strategy matrix.
  double RangeVariance(const Interval& range) const;

  /// w^T (A^T A)^{-1} w for the range-indicator workload (no noise
  /// factor).
  double GramQuadraticForm(const Interval& range) const;

  /// Reference path for the hierarchical form: the same elimination
  /// recursed all the way to the leaves, O(width) per query, sharing no
  /// memoized shape table with the fast path. Lets tests cross-check the
  /// two at widths where the dense Cholesky oracle is unaffordable.
  /// kHBar only (the wavelet form has no memo to bypass).
  double GramQuadraticFormUnmemoized(const Interval& range) const;

  std::int64_t width() const { return width_; }
  /// Width the underlying strategy matrix covers: `width` for kHBar,
  /// the next power of two for kWavelet — exactly MaxAnalyzerWidth's
  /// padding, so the two paths can never disagree about geometry.
  std::int64_t analyzer_width() const { return analyzer_width_; }
  double sensitivity() const { return sensitivity_; }

 private:
  /// The affine-elimination state of one subtree: S = alpha - beta * t,
  /// sum w_i z_i = delta - gamma * t (t = sum of strict-ancestor S's).
  struct NodeState {
    double alpha = 0.0;
    double beta = 0.0;
    double delta = 0.0;
    double gamma = 0.0;
  };

  RecurrenceOracle() = default;

  double WaveletQuadraticForm(const Interval& range) const;

  /// Elimination state of the node at `depth` whose subtree starts at
  /// leaf `base` (base < width_), for the workload 1_range. Recurses
  /// only through subtrees straddling a range endpoint; everything else
  /// is a precomputed shape lookup.
  NodeState EvalNode(std::int64_t depth, std::int64_t base,
                     const Interval& range) const;

  /// Table-free reference version of EvalNode (always recurses).
  NodeState EvalNodeUnmemoized(std::int64_t depth, std::int64_t base,
                               const Interval& range) const;

  StrategyKind kind_ = StrategyKind::kHBar;
  std::int64_t width_ = 0;
  std::int64_t analyzer_width_ = 0;
  std::int64_t branching_ = 2;
  double epsilon_ = 1.0;
  double sensitivity_ = 0.0;

  // Hierarchical shape tables, indexed by depth (root 0, leaves
  // height-1). "Full" = the subtree's every leaf is real; the at most
  // one partial subtree per depth (the one containing leaf width-1) has
  // its own entry. Inside = workload 1 on all real leaves; outside =
  // workload 0, where alpha = delta = gamma = 0 and only beta (a pure
  // shape property) survives.
  std::int64_t height_ = 0;
  std::vector<std::int64_t> capacity_;  // k^(height-1-depth)
  std::vector<NodeState> full_inside_;
  std::vector<double> full_outside_beta_;
  std::vector<NodeState> partial_inside_;
  std::vector<double> partial_outside_beta_;
  std::vector<bool> partial_exists_;
};

}  // namespace dphist::planner

#endif  // DPHIST_PLANNER_RECURRENCE_ORACLE_H_
