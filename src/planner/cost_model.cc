#include "planner/cost_model.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace dphist::planner {
namespace {

/// Uniform smoothing floor added to every placement's heat share before
/// normalizing: one bin's worth of uniform traffic. Keeps placements in
/// regions the observed stream never visited at a small positive weight
/// (traffic shifts; a plan must not be blind outside yesterday's hot
/// spots) while letting real heat dominate.
constexpr double kPlacementHeatSmoothing =
    1.0 / static_cast<double>(WorkloadProfile::kHeatBins);

Status ValidateForCosting(const SnapshotOptions& config,
                          const WorkloadProfile& profile,
                          std::int64_t domain_size) {
  if (config.strategy == StrategyKind::kAuto) {
    return Status::InvalidArgument(
        "kAuto is a request to plan, not a configuration to cost");
  }
  if (profile.domain_size() != domain_size) {
    return Status::InvalidArgument("profile domain does not match");
  }
  if (profile.empty()) {
    return Status::InvalidArgument("cannot cost an empty workload profile");
  }
  if (config.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (config.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  if (config.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  return Status::Ok();
}

/// Dense-path feasibility gate (the recurrence path has no width limit).
Status CheckDenseFeasible(const SnapshotOptions& config,
                          std::int64_t domain_size,
                          const CostModel::Options& options) {
  if (!options.use_dense_oracle) return Status::Ok();
  if (config.strategy != StrategyKind::kHBar &&
      config.strategy != StrategyKind::kWavelet) {
    return Status::Ok();
  }
  // MaxAnalyzerWidth is exactly what the oracle's Gram factorization
  // will be asked to handle (wavelet shards pad to a power of two).
  const std::int64_t analyzer_width = MaxAnalyzerWidth(config, domain_size);
  if (analyzer_width > options.max_analyzer_width) {
    return Status::OutOfRange(
        "closed form infeasible: shard width " +
        std::to_string(analyzer_width) + " exceeds analyzer cap " +
        std::to_string(options.max_analyzer_width));
  }
  return Status::Ok();
}

/// Builds the candidate's oracle over the linear protocol (the closed
/// forms' precondition; rounding/pruning only ever shrink error, so the
/// linear cost ranks configurations as a monotone proxy either way).
Result<VarianceOracle> MakeOracle(const SnapshotOptions& config,
                                  std::int64_t domain_size,
                                  const CostModel::Options& options) {
  SnapshotOptions linear = config;
  linear.round_to_nonnegative_integers = false;
  linear.prune_nonpositive_subtrees = false;
  VarianceOracleOptions oracle_options;
  oracle_options.use_dense_analyzer = options.use_dense_oracle;
  return VarianceOracle::Create(linear, domain_size, oracle_options);
}

std::int64_t PlacementCount(std::int64_t domain_size, std::int64_t length,
                            const CostModel::Options& options) {
  const std::int64_t max_lo = domain_size - length;
  return std::min(options.placements_per_length, max_lo + 1);
}

/// Evenly spaced placements, always including both extremes when more
/// than one fits; deterministic so plans are reproducible.
std::int64_t PlacementLo(std::int64_t domain_size, std::int64_t length,
                         std::int64_t placements, std::int64_t p) {
  const std::int64_t max_lo = domain_size - length;
  return placements == 1 ? 0 : (p * max_lo) / (placements - 1);
}

/// The per-placement variances of one query length, in grid order — the
/// only part of an evaluation that touches the oracle, and a pure
/// function of (configuration, length): profile weights and heat never
/// enter, which is what makes IncrementalCostModel's memo exact.
std::vector<double> PlacementVariances(const VarianceOracle& oracle,
                                       std::int64_t length,
                                       const CostModel::Options& options) {
  const std::int64_t domain_size = oracle.domain_size();
  const std::int64_t placements =
      PlacementCount(domain_size, length, options);
  std::vector<double> variances;
  variances.reserve(static_cast<std::size_t>(placements));
  for (std::int64_t p = 0; p < placements; ++p) {
    const std::int64_t lo = PlacementLo(domain_size, length, placements, p);
    variances.push_back(oracle.RangeVariance(Interval(lo, lo + length - 1)));
  }
  return variances;
}

/// Folds one length's placement variances into its placement mean:
/// uniform when the profile has no placement information, otherwise
/// weighted by the (smoothed) observed traffic share at each placement's
/// midpoint. Also folds into the running worst-case. Shared verbatim by
/// CostModel::Evaluate and IncrementalCostModel so a cached re-cost can
/// never diverge from a from-scratch evaluation.
double FoldLength(const std::vector<double>& variances,
                  const WorkloadProfile& profile, std::int64_t length,
                  const CostModel::Options& options, double* worst) {
  const std::int64_t domain_size = profile.domain_size();
  const std::int64_t placements =
      PlacementCount(domain_size, length, options);
  DPHIST_CHECK_MSG(static_cast<std::size_t>(placements) == variances.size(),
                   "placement grid and variance vector disagree");
  const bool heat = profile.has_position_heat();
  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::int64_t p = 0; p < placements; ++p) {
    const double variance = variances[static_cast<std::size_t>(p)];
    double weight = 1.0;
    if (heat) {
      const std::int64_t lo =
          PlacementLo(domain_size, length, placements, p);
      const std::int64_t midpoint = lo + (length - 1) / 2;
      weight = profile.PositionHeat(midpoint) + kPlacementHeatSmoothing;
    }
    weighted += weight * variance;
    weight_sum += weight;
    *worst = std::max(*worst, variance);
  }
  return weighted / weight_sum;
}

}  // namespace

CostModel::CostModel(std::int64_t domain_size, const Options& options)
    : domain_size_(domain_size), options_(options) {
  DPHIST_CHECK_MSG(domain_size_ >= 1, "domain must be non-empty");
  DPHIST_CHECK_MSG(options_.max_analyzer_width >= 1,
                   "max_analyzer_width must be >= 1");
  DPHIST_CHECK_MSG(options_.placements_per_length >= 1,
                   "placements_per_length must be >= 1");
}

Result<QueryCost> CostModel::Evaluate(const SnapshotOptions& config,
                                      const WorkloadProfile& profile) const {
  Status valid = ValidateForCosting(config, profile, domain_size_);
  if (!valid.ok()) return valid;
  Status feasible = CheckDenseFeasible(config, domain_size_, options_);
  if (!feasible.ok()) return feasible;
  Result<VarianceOracle> oracle = MakeOracle(config, domain_size_, options_);
  if (!oracle.ok()) return oracle.status();

  QueryCost cost;
  double weighted_sum = 0.0;
  for (const auto& [length, weight] : profile.length_weights()) {
    const std::vector<double> variances =
        PlacementVariances(oracle.value(), length, options_);
    weighted_sum += weight * FoldLength(variances, profile, length,
                                        options_, &cost.worst_variance);
  }
  cost.mean_variance = weighted_sum / profile.total_weight();
  return cost;
}

IncrementalCostModel::IncrementalCostModel(std::int64_t domain_size,
                                           const CostModel::Options& options)
    : model_(domain_size, options) {}

Result<QueryCost> IncrementalCostModel::Evaluate(
    const SnapshotOptions& config, const WorkloadProfile& profile) {
  const std::int64_t domain_size = model_.domain_size();
  const CostModel::Options& options = model_.options();
  Status valid = ValidateForCosting(config, profile, domain_size);
  if (!valid.ok()) return valid;
  Status feasible = CheckDenseFeasible(config, domain_size, options);
  if (!feasible.ok()) return feasible;

  stats_.evaluations += 1;
  if (!seen_profile_ || profile.length_weights() != last_weights_) {
    stats_.generation += 1;
    last_weights_ = profile.length_weights();
    seen_profile_ = true;
  }

  const CandidateKey key{config.strategy, config.shards, config.branching,
                         config.epsilon};
  CandidateEntry& entry = candidates_[key];
  if (entry.oracle == nullptr) {
    Result<VarianceOracle> oracle = MakeOracle(config, domain_size, options);
    if (!oracle.ok()) {
      candidates_.erase(key);
      return oracle.status();
    }
    entry.oracle =
        std::make_unique<VarianceOracle>(std::move(oracle).value());
  }

  QueryCost cost;
  double weighted_sum = 0.0;
  for (const auto& [length, weight] : profile.length_weights()) {
    auto it = entry.lengths.find(length);
    if (it == entry.lengths.end()) {
      it = entry.lengths
               .emplace(length,
                        PlacementVariances(*entry.oracle, length, options))
               .first;
      stats_.lengths_costed += 1;
    } else {
      stats_.lengths_reused += 1;
    }
    weighted_sum += weight * FoldLength(it->second, profile, length,
                                        options, &cost.worst_variance);
  }
  cost.mean_variance = weighted_sum / profile.total_weight();
  return cost;
}

}  // namespace dphist::planner
