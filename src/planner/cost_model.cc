#include "planner/cost_model.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "planner/variance_oracle.h"

namespace dphist::planner {

CostModel::CostModel(std::int64_t domain_size, const Options& options)
    : domain_size_(domain_size), options_(options) {
  DPHIST_CHECK_MSG(domain_size_ >= 1, "domain must be non-empty");
  DPHIST_CHECK_MSG(options_.max_analyzer_width >= 1,
                   "max_analyzer_width must be >= 1");
  DPHIST_CHECK_MSG(options_.placements_per_length >= 1,
                   "placements_per_length must be >= 1");
}

Result<QueryCost> CostModel::Evaluate(const SnapshotOptions& config,
                                      const WorkloadProfile& profile) const {
  if (config.strategy == StrategyKind::kAuto) {
    return Status::InvalidArgument(
        "kAuto is a request to plan, not a configuration to cost");
  }
  if (profile.domain_size() != domain_size_) {
    return Status::InvalidArgument("profile domain does not match");
  }
  if (profile.empty()) {
    return Status::InvalidArgument("cannot cost an empty workload profile");
  }
  if (config.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (config.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  if (config.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }

  if (config.strategy == StrategyKind::kHBar ||
      config.strategy == StrategyKind::kWavelet) {
    // MaxAnalyzerWidth is exactly what the oracle's Gram factorization
    // will be asked to handle (wavelet shards pad to a power of two).
    const std::int64_t analyzer_width =
        MaxAnalyzerWidth(config, domain_size_);
    if (analyzer_width > options_.max_analyzer_width) {
      return Status::OutOfRange(
          "closed form infeasible: shard width " +
          std::to_string(analyzer_width) + " exceeds analyzer cap " +
          std::to_string(options_.max_analyzer_width));
    }
  }

  // The oracle requires the linear protocol; rounding/pruning only ever
  // shrink error (Section 5.2), so the linear cost ranks configurations
  // as a monotone proxy either way.
  SnapshotOptions linear = config;
  linear.round_to_nonnegative_integers = false;
  linear.prune_nonpositive_subtrees = false;
  VarianceOracle oracle(linear, domain_size_);

  QueryCost cost;
  double weighted_sum = 0.0;
  for (const auto& [length, weight] : profile.length_weights()) {
    // Evenly spaced placements, always including both extremes when more
    // than one fits; deterministic so plans are reproducible.
    const std::int64_t max_lo = domain_size_ - length;
    const std::int64_t placements =
        std::min(options_.placements_per_length, max_lo + 1);
    double sum = 0.0;
    for (std::int64_t p = 0; p < placements; ++p) {
      const std::int64_t lo =
          placements == 1 ? 0 : (p * max_lo) / (placements - 1);
      const double variance =
          oracle.RangeVariance(Interval(lo, lo + length - 1));
      sum += variance;
      cost.worst_variance = std::max(cost.worst_variance, variance);
    }
    weighted_sum += weight * (sum / static_cast<double>(placements));
  }
  cost.mean_variance = weighted_sum / profile.total_weight();
  return cost;
}

}  // namespace dphist::planner
