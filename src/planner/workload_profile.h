// WorkloadProfile: what the traffic looks like, as a weighted histogram
// of query lengths.
//
// Hay et al.'s central empirical result (Sections 4 and 7) is that no
// single release strategy dominates: unit counts favor L~, long ranges
// favor the constrained hierarchy, and sharding shifts the crossover.
// Choosing well therefore requires knowing the workload. A
// WorkloadProfile is the minimal sufficient summary the cost model
// needs: how often each query *length* occurs. (Within a length the
// cost model averages over placements, so positions need not be kept.)
//
// Profiles come from three places:
//   - a workload file ("lo hi" lines, the serve/plan CLI format),
//   - observed QueryService traffic (log2-bucketed, lock-free counters),
//   - an explicit prior (AddLength) when neither exists yet.

#ifndef DPHIST_PLANNER_WORKLOAD_PROFILE_H_
#define DPHIST_PLANNER_WORKLOAD_PROFILE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "domain/interval.h"

namespace dphist::planner {

/// Weighted histogram of query lengths over a fixed domain, plus a
/// coarse per-position "heat" histogram of where placed queries landed.
class WorkloadProfile {
 public:
  /// Bins of the position-heat histogram: each placed query credits the
  /// bin holding its midpoint. Coarse on purpose — the cost model only
  /// needs to know which placement-grid points traffic actually visits,
  /// not exact positions (which would also be a sharper disclosure of
  /// the query stream than a replan decision needs).
  static constexpr std::size_t kHeatBins = 64;

  explicit WorkloadProfile(std::int64_t domain_size);

  /// Records one observed query (weight 1), including its midpoint in
  /// the position heat.
  void AddQuery(const Interval& query);

  /// Records `weight` queries shaped like `query` (same length, same
  /// midpoint heat). The reservoir export path, where one retained
  /// sample stands for seen/|sample| observed queries.
  void AddQueryWeighted(const Interval& query, double weight);

  /// Records `weight` queries of the given length with *unknown*
  /// placement (contributes no heat). Checked:
  /// 1 <= length <= domain_size, weight > 0.
  void AddLength(std::int64_t length, double weight = 1.0);

  /// A neutral prior when nothing has been observed: one unit of weight
  /// at every power-of-two length up to the domain (1, 2, 4, ..., n).
  static WorkloadProfile GeometricSweep(std::int64_t domain_size);

  /// Profile of a whole workload file (one "lo hi" query per line).
  static Result<WorkloadProfile> FromQueryFile(const std::string& path,
                                               std::int64_t domain_size);

  /// Rebuilds a profile from its persisted summary (the length_weights
  /// map plus the raw position-heat bins); total and heat weights are
  /// recomputed as the plain sums of what is restored. Rejects lengths
  /// outside [1, domain_size], non-positive weights, and negative heat.
  static Result<WorkloadProfile> Restore(
      std::int64_t domain_size, std::map<std::int64_t, double> lengths,
      const std::array<double, kHeatBins>& heat);

  std::int64_t domain_size() const { return domain_size_; }
  double total_weight() const { return total_weight_; }
  bool empty() const { return lengths_.empty(); }

  /// Weight per distinct length, ascending by length.
  const std::map<std::int64_t, double>& length_weights() const {
    return lengths_;
  }

  /// True when at least one query carried placement information (via
  /// AddQuery/AddQueryWeighted). False for pure-length profiles
  /// (AddLength, GeometricSweep, the service's bucketed counters),
  /// where the cost model falls back to uniform placement weighting.
  bool has_position_heat() const { return heat_weight_ > 0.0; }

  /// Fraction of the placed-query weight whose midpoint landed in the
  /// heat bin containing `position` (in [0, 1]; 0 when no query carried
  /// placement information). Requires 0 <= position < domain_size.
  double PositionHeat(std::int64_t position) const;

  /// The raw per-bin placed-query weights (kHeatBins entries; trailing
  /// bins are unused when domain_size < kHeatBins).
  const std::array<double, kHeatBins>& position_heat() const {
    return heat_;
  }

 private:
  std::size_t HeatBin(std::int64_t position) const;

  std::int64_t domain_size_;
  /// Domain positions per heat bin, ceil(domain_size / kHeatBins).
  std::int64_t heat_bin_width_;
  double total_weight_ = 0.0;
  /// Total weight added with a known placement (heat_ sums to this).
  double heat_weight_ = 0.0;
  std::map<std::int64_t, double> lengths_;
  std::array<double, kHeatBins> heat_{};
};

/// Parses a range workload file: one query per line, "lo hi" (comma or
/// whitespace separated), blank lines skipped. Every range must lie in
/// [0, domain_size); errors carry the offending line number. This is the
/// format `dphist serve --queries` and `dphist plan --queries` consume.
Result<std::vector<Interval>> LoadWorkloadFile(const std::string& path,
                                               std::int64_t domain_size);

/// Fixed-capacity uniform sample of observed queries (Algorithm R).
///
/// The service's lock-free traffic counters bucket query lengths at
/// powers of two, so a replan from observation can differ from a replan
/// given the raw workload (a stream of length-3 queries is profiled as
/// its bucket representative, length 2). A reservoir keeps raw (lo, hi)
/// pairs: when every observed query fits the capacity the sample IS the
/// workload and replanning from it matches replanning from the file
/// exactly; beyond capacity it stays a uniform sample, still
/// length-exact on what it kept.
///
/// Replacement uses a deterministic splitmix64 stream over the running
/// count, so a single-threaded observation sequence always yields the
/// same sample. Observe never allocates after construction. Not
/// thread-safe — concurrent callers shard reservoirs and merge via
/// AddTo (QueryService does).
class QueryReservoir {
 public:
  explicit QueryReservoir(std::size_t capacity);

  /// Records one query: kept outright while the reservoir has room,
  /// afterwards admitted with probability capacity/seen, replacing a
  /// pseudo-uniformly chosen resident.
  void Observe(const Interval& query);

  /// Queries observed (not the number retained).
  std::uint64_t seen() const { return seen_; }

  std::size_t capacity() const { return capacity_; }
  bool empty() const { return sample_.empty(); }
  const std::vector<Interval>& sample() const { return sample_; }

  /// Folds the sample into `profile` at the queries' exact lengths and
  /// placements (clamped to the profile's domain), weighting each
  /// retained query by seen/|sample| so the contributed total weight
  /// equals the observed count — an unbiased length histogram of the
  /// underlying stream. Because the reservoir keeps raw (lo, hi) pairs,
  /// this also populates the profile's position heat, which the cost
  /// model uses to weight placements by where traffic actually lands.
  void AddTo(WorkloadProfile* profile) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<Interval> sample_;
};

}  // namespace dphist::planner

#endif  // DPHIST_PLANNER_WORKLOAD_PROFILE_H_
