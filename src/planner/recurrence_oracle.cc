#include "planner/recurrence_oracle.h"

#include <algorithm>

#include "analysis/strategy_matrix.h"
#include "common/check.h"
#include "tree/tree_layout.h"

namespace dphist::planner {
namespace {

std::int64_t NextPowerOfTwo(std::int64_t n) {
  std::int64_t p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

bool RecurrenceOracle::Supports(StrategyKind kind) {
  return kind == StrategyKind::kHBar || kind == StrategyKind::kWavelet;
}

Result<RecurrenceOracle> RecurrenceOracle::Create(StrategyKind kind,
                                                  std::int64_t width,
                                                  std::int64_t branching,
                                                  double epsilon) {
  if (!Supports(kind)) {
    return Status::InvalidArgument(
        "no Gram recurrence for this strategy (only H-bar and wavelet "
        "answer through an OLS closed form)");
  }
  if (width < 1) {
    return Status::InvalidArgument("width must be >= 1");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  RecurrenceOracle oracle;
  oracle.kind_ = kind;
  oracle.width_ = width;
  oracle.epsilon_ = epsilon;

  if (kind == StrategyKind::kWavelet) {
    oracle.analyzer_width_ = NextPowerOfTwo(width);
    oracle.sensitivity_ = WaveletStrategySensitivity(oracle.analyzer_width_);
    return oracle;
  }

  if (branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  oracle.branching_ = branching;
  oracle.analyzer_width_ = width;
  const TreeLayout tree(width, branching);
  const std::int64_t height = tree.height();
  oracle.height_ = height;
  oracle.sensitivity_ = HierarchicalStrategySensitivity(width, branching);

  oracle.capacity_.assign(static_cast<std::size_t>(height), 1);
  for (std::int64_t d = height - 2; d >= 0; --d) {
    oracle.capacity_[static_cast<std::size_t>(d)] =
        oracle.capacity_[static_cast<std::size_t>(d + 1)] * branching;
  }

  // Full-subtree shapes, bottom-up. Leaves: S = w - t and w z = w^2 - wt
  // give (w, 1, w^2, w) — (1,1,1,1) inside the range, (0,1,0,0) outside.
  oracle.full_inside_.assign(static_cast<std::size_t>(height),
                             NodeState{1.0, 1.0, 1.0, 1.0});
  oracle.full_outside_beta_.assign(static_cast<std::size_t>(height), 1.0);
  const double k = static_cast<double>(branching);
  for (std::int64_t d = height - 2; d >= 0; --d) {
    const NodeState& child =
        oracle.full_inside_[static_cast<std::size_t>(d + 1)];
    const double a = k * child.alpha;
    const double b = k * child.beta;
    const double gamma = k * child.gamma;
    const double s = k * child.delta;
    NodeState& state = oracle.full_inside_[static_cast<std::size_t>(d)];
    state.alpha = a / (1.0 + b);
    state.beta = b / (1.0 + b);
    state.delta = s - gamma * state.alpha;
    state.gamma = gamma * (1.0 - state.beta);
    const double ob =
        k * oracle.full_outside_beta_[static_cast<std::size_t>(d + 1)];
    oracle.full_outside_beta_[static_cast<std::size_t>(d)] =
        ob / (1.0 + ob);
  }

  // The partial-subtree chain: at each depth at most one node has fewer
  // real leaves than its capacity — the ancestor of leaf width-1 — and
  // its children are a run of full subtrees, then possibly the next
  // depth's partial node, then all-padding subtrees (zero strategy rows,
  // skipped entirely).
  oracle.partial_inside_.assign(static_cast<std::size_t>(height),
                                NodeState{});
  oracle.partial_outside_beta_.assign(static_cast<std::size_t>(height),
                                      0.0);
  oracle.partial_exists_.assign(static_cast<std::size_t>(height), false);
  for (std::int64_t d = height - 2; d >= 0; --d) {
    const std::int64_t cap = oracle.capacity_[static_cast<std::size_t>(d)];
    const std::int64_t base = ((width - 1) / cap) * cap;
    const std::int64_t real = width - base;
    if (real == cap) continue;  // the last node at this depth is full
    oracle.partial_exists_[static_cast<std::size_t>(d)] = true;
    const std::int64_t child_cap =
        oracle.capacity_[static_cast<std::size_t>(d + 1)];
    const std::int64_t full_children = real / child_cap;
    const bool has_partial_child = real % child_cap != 0;
    const double f = static_cast<double>(full_children);
    const NodeState& fi =
        oracle.full_inside_[static_cast<std::size_t>(d + 1)];
    NodeState child_sum{f * fi.alpha, f * fi.beta, f * fi.delta,
                        f * fi.gamma};
    double outside_b =
        f * oracle.full_outside_beta_[static_cast<std::size_t>(d + 1)];
    if (has_partial_child) {
      const NodeState& pi =
          oracle.partial_inside_[static_cast<std::size_t>(d + 1)];
      child_sum.alpha += pi.alpha;
      child_sum.beta += pi.beta;
      child_sum.delta += pi.delta;
      child_sum.gamma += pi.gamma;
      outside_b +=
          oracle.partial_outside_beta_[static_cast<std::size_t>(d + 1)];
    }
    NodeState& state = oracle.partial_inside_[static_cast<std::size_t>(d)];
    state.alpha = child_sum.alpha / (1.0 + child_sum.beta);
    state.beta = child_sum.beta / (1.0 + child_sum.beta);
    state.delta = child_sum.delta - child_sum.gamma * state.alpha;
    state.gamma = child_sum.gamma * (1.0 - state.beta);
    oracle.partial_outside_beta_[static_cast<std::size_t>(d)] =
        outside_b / (1.0 + outside_b);
  }
  return oracle;
}

double RecurrenceOracle::RangeVariance(const Interval& range) const {
  const double scale = sensitivity_ / epsilon_;
  return 2.0 * scale * scale * GramQuadraticForm(range);
}

double RecurrenceOracle::GramQuadraticForm(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < width_,
                   "range outside the oracle's width");
  return kind_ == StrategyKind::kWavelet
             ? WaveletQuadraticForm(range)
             : EvalNode(0, 0, range).delta;
}

double RecurrenceOracle::GramQuadraticFormUnmemoized(
    const Interval& range) const {
  DPHIST_CHECK_MSG(kind_ == StrategyKind::kHBar,
                   "the reference recursion exists for the hierarchical "
                   "form only");
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < width_,
                   "range outside the oracle's width");
  return EvalNodeUnmemoized(0, 0, range).delta;
}

RecurrenceOracle::NodeState RecurrenceOracle::EvalNode(
    std::int64_t depth, std::int64_t base, const Interval& range) const {
  const std::int64_t cap = capacity_[static_cast<std::size_t>(depth)];
  const std::int64_t real_hi = std::min(base + cap, width_) - 1;
  const bool full = base + cap <= width_;
  if (range.lo() <= base && real_hi <= range.hi()) {
    return full ? full_inside_[static_cast<std::size_t>(depth)]
                : partial_inside_[static_cast<std::size_t>(depth)];
  }
  if (range.hi() < base || real_hi < range.lo()) {
    NodeState outside;
    outside.beta = full
                       ? full_outside_beta_[static_cast<std::size_t>(depth)]
                       : partial_outside_beta_[static_cast<std::size_t>(
                             depth)];
    return outside;
  }
  // The node straddles a range endpoint; combine its children. Only the
  // children straddling an endpoint recurse further — at most two per
  // level across the whole evaluation.
  const std::int64_t child_cap =
      capacity_[static_cast<std::size_t>(depth + 1)];
  NodeState sum;
  for (std::int64_t child = base; child < base + cap && child < width_;
       child += child_cap) {
    const NodeState c = EvalNode(depth + 1, child, range);
    sum.alpha += c.alpha;
    sum.beta += c.beta;
    sum.delta += c.delta;
    sum.gamma += c.gamma;
  }
  NodeState state;
  state.alpha = sum.alpha / (1.0 + sum.beta);
  state.beta = sum.beta / (1.0 + sum.beta);
  state.delta = sum.delta - sum.gamma * state.alpha;
  state.gamma = sum.gamma * (1.0 - state.beta);
  return state;
}

RecurrenceOracle::NodeState RecurrenceOracle::EvalNodeUnmemoized(
    std::int64_t depth, std::int64_t base, const Interval& range) const {
  const std::int64_t cap = capacity_[static_cast<std::size_t>(depth)];
  if (cap == 1) {
    const bool inside = range.Contains(base);
    return inside ? NodeState{1.0, 1.0, 1.0, 1.0}
                  : NodeState{0.0, 1.0, 0.0, 0.0};
  }
  const std::int64_t child_cap =
      capacity_[static_cast<std::size_t>(depth + 1)];
  NodeState sum;
  for (std::int64_t child = base; child < base + cap && child < width_;
       child += child_cap) {
    const NodeState c = EvalNodeUnmemoized(depth + 1, child, range);
    sum.alpha += c.alpha;
    sum.beta += c.beta;
    sum.delta += c.delta;
    sum.gamma += c.gamma;
  }
  NodeState state;
  state.alpha = sum.alpha / (1.0 + sum.beta);
  state.beta = sum.beta / (1.0 + sum.beta);
  state.delta = sum.delta - sum.gamma * state.alpha;
  state.gamma = sum.gamma * (1.0 - state.beta);
  return state;
}

double RecurrenceOracle::WaveletQuadraticForm(const Interval& range) const {
  const double p = static_cast<double>(analyzer_width_);
  const double len = static_cast<double>(range.Length());
  // Base row (all ones, |r|^2 = P): (w . r)^2 / |r|^4 = len^2 / P^2.
  double total = (len * len) / (p * p);
  // Detail rows: only the block containing each endpoint can see an
  // imbalanced overlap; every other block's halves contribute equally.
  for (std::int64_t block = analyzer_width_; block >= 2; block /= 2) {
    const std::int64_t half = block / 2;
    std::int64_t starts[2] = {(range.lo() / block) * block,
                              (range.hi() / block) * block};
    const int distinct = starts[0] == starts[1] ? 1 : 2;
    for (int i = 0; i < distinct; ++i) {
      const std::int64_t start = starts[i];
      const std::int64_t left = std::min(range.hi(), start + half - 1) -
                                std::max(range.lo(), start) + 1;
      const std::int64_t right =
          std::min(range.hi(), start + block - 1) -
          std::max(range.lo(), start + half) + 1;
      const double d = static_cast<double>(std::max<std::int64_t>(left, 0) -
                                           std::max<std::int64_t>(right, 0));
      total += (d * d) / (static_cast<double>(block) *
                          static_cast<double>(block));
    }
  }
  return total;
}

}  // namespace dphist::planner
