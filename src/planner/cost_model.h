// CostModel: expected per-query error of a (strategy, shards)
// configuration against a workload profile.
//
// For every configuration the serving layer can publish, the closed-form
// oracle (planner/variance_oracle.h) gives the exact per-query variance
// of the *linear* protocol. The cost model folds that over a
// WorkloadProfile: for each observed query length it averages the
// variance over a deterministic set of placements (variance depends on
// where a range falls relative to shard and subtree boundaries, not just
// on its length), then weights by how often the length occurs. The
// result is the expected squared error per query — the quantity the
// planner minimizes.
//
// Rounding/pruning (Section 5.2) are nonlinear and only ever reduce
// error, so configurations are ranked by their linear closed forms even
// when the published release will round: the ranking is used as a
// monotone proxy. H-bar and wavelet costs require factorizing an
// O(width^2) strategy Gram matrix; candidates whose shard width exceeds
// `max_analyzer_width` are reported infeasible rather than stalling the
// planner (shard more, or raise the cap).

#ifndef DPHIST_PLANNER_COST_MODEL_H_
#define DPHIST_PLANNER_COST_MODEL_H_

#include <cstdint>

#include "common/status.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

namespace dphist::planner {

/// Workload-weighted error summary of one configuration.
struct QueryCost {
  /// Profile-weighted mean per-query variance (the planner's default
  /// objective).
  double mean_variance = 0.0;
  /// Largest per-query variance over every evaluated (length, placement)
  /// — a worst-case objective for latency-of-error-sensitive callers.
  double worst_variance = 0.0;
};

/// Evaluates configurations against profiles over one domain.
class CostModel {
 public:
  struct Options {
    /// H-bar/wavelet closed forms need an O(width^3) Cholesky of the
    /// per-shard strategy Gram matrix; wider shards are infeasible.
    std::int64_t max_analyzer_width = 1024;
    /// Placements sampled per query length (deterministic, evenly
    /// spaced); variance is averaged over them.
    std::int64_t placements_per_length = 8;
  };

  explicit CostModel(std::int64_t domain_size)
      : CostModel(domain_size, Options()) {}
  CostModel(std::int64_t domain_size, const Options& options);

  /// Expected per-query variance of `config` under `profile`. Fails on
  /// kAuto (nothing to evaluate), an empty profile, a profile for a
  /// different domain, or an infeasible analyzer width.
  Result<QueryCost> Evaluate(const SnapshotOptions& config,
                             const WorkloadProfile& profile) const;

  std::int64_t domain_size() const { return domain_size_; }
  const Options& options() const { return options_; }

 private:
  std::int64_t domain_size_;
  Options options_;
};

}  // namespace dphist::planner

#endif  // DPHIST_PLANNER_COST_MODEL_H_
