// CostModel: expected per-query error of a (strategy, shards)
// configuration against a workload profile.
//
// For every configuration the serving layer can publish, the closed-form
// oracle (planner/variance_oracle.h) gives the exact per-query variance
// of the *linear* protocol. The cost model folds that over a
// WorkloadProfile: for each observed query length it averages the
// variance over a deterministic set of placements (variance depends on
// where a range falls relative to shard and subtree boundaries, not just
// on its length), then weights by how often the length occurs. When the
// profile carries position heat (reservoir-exported traffic), each
// placement is weighted by the observed traffic share at its midpoint —
// plus a uniform smoothing floor so cold regions keep a voice — instead
// of uniformly. The result is the expected squared error per query — the
// quantity the planner minimizes.
//
// Rounding/pruning (Section 5.2) are nonlinear and only ever reduce
// error, so configurations are ranked by their linear closed forms even
// when the published release will round: the ranking is used as a
// monotone proxy.
//
// H-bar and wavelet variances go through the Gram recurrence closed
// forms by default — exact and O(branching * log width) at every width,
// so no candidate is ever infeasible. Setting use_dense_oracle routes
// them through the dense O(width^3) Cholesky instead (the independent
// test oracle); only then does max_analyzer_width apply, reporting
// candidates whose shard width exceeds it as infeasible rather than
// stalling the planner.

#ifndef DPHIST_PLANNER_COST_MODEL_H_
#define DPHIST_PLANNER_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "planner/variance_oracle.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

namespace dphist::planner {

/// Workload-weighted error summary of one configuration.
struct QueryCost {
  /// Profile-weighted mean per-query variance (the planner's default
  /// objective).
  double mean_variance = 0.0;
  /// Largest per-query variance over every evaluated (length, placement)
  /// — a worst-case objective for latency-of-error-sensitive callers.
  double worst_variance = 0.0;
};

/// Evaluates configurations against profiles over one domain.
class CostModel {
 public:
  struct Options {
    /// Dense-path safety cap: with use_dense_oracle, H-bar/wavelet
    /// candidates whose per-shard strategy matrix would exceed this
    /// width are reported infeasible (the Cholesky is O(width^3)). The
    /// default recurrence path is exact at every width and ignores it.
    std::int64_t max_analyzer_width = 1024;
    /// Placements sampled per query length (deterministic, evenly
    /// spaced); variance is averaged over them (heat-weighted when the
    /// profile knows where traffic lands).
    std::int64_t placements_per_length = 8;
    /// Route H-bar/wavelet through the dense Gram Cholesky instead of
    /// the recurrence closed forms. The test-oracle escape hatch
    /// (--dense-oracle in the CLI); see VarianceOracleOptions.
    bool use_dense_oracle = false;
  };

  explicit CostModel(std::int64_t domain_size)
      : CostModel(domain_size, Options()) {}
  CostModel(std::int64_t domain_size, const Options& options);

  /// Expected per-query variance of `config` under `profile`. Fails on
  /// kAuto (nothing to evaluate), an empty profile, a profile for a
  /// different domain, or (dense path only) an infeasible analyzer
  /// width.
  Result<QueryCost> Evaluate(const SnapshotOptions& config,
                             const WorkloadProfile& profile) const;

  std::int64_t domain_size() const { return domain_size_; }
  const Options& options() const { return options_; }

 private:
  std::int64_t domain_size_;
  Options options_;
};

/// Incremental, cached cost evaluation for repeated replan decisions.
///
/// The expensive part of CostModel::Evaluate is the per-(length,
/// placement) oracle call; crucially, that variance depends only on the
/// candidate configuration and the placement geometry — never on the
/// profile's weights or heat. IncrementalCostModel memoizes those
/// variance vectors per candidate (strategy, shards, branching, epsilon)
/// and per length, so re-costing a drifted profile is a pure
/// re-weighting fold over cached numbers: the oracle runs only for query
/// lengths a candidate has never seen. The fold is shared with
/// CostModel::Evaluate, so a cached re-cost equals a from-scratch
/// evaluation bit for bit (pinned by cost_model_test).
///
/// Not thread-safe: the runtime's EpochManager serializes every replan
/// and drift check through its busy token and owns one instance across
/// the service's lifetime.
class IncrementalCostModel {
 public:
  IncrementalCostModel(std::int64_t domain_size,
                       const CostModel::Options& options);

  /// Same contract and same result as model().Evaluate(config, profile),
  /// served from the per-candidate memo where possible.
  Result<QueryCost> Evaluate(const SnapshotOptions& config,
                             const WorkloadProfile& profile);

  struct Stats {
    std::uint64_t evaluations = 0;    // Evaluate calls
    std::uint64_t lengths_costed = 0; // lengths that ran the oracle
    std::uint64_t lengths_reused = 0; // lengths served from the memo
    /// Profile generation: bumps whenever an Evaluate call sees a
    /// length-weight table different from the previous call's.
    std::uint64_t generation = 0;
  };
  const Stats& stats() const { return stats_; }

  const CostModel& model() const { return model_; }

 private:
  struct CandidateKey {
    StrategyKind strategy;
    std::int64_t shards;
    std::int64_t branching;
    double epsilon;
    bool operator<(const CandidateKey& other) const {
      return std::tie(strategy, shards, branching, epsilon) <
             std::tie(other.strategy, other.shards, other.branching,
                      other.epsilon);
    }
  };
  struct CandidateEntry {
    /// The candidate's oracle, kept alive so its lazily built per-width
    /// recurrence tables amortize across evaluations too.
    std::unique_ptr<VarianceOracle> oracle;
    /// Placement-grid variance vectors keyed by query length.
    std::map<std::int64_t, std::vector<double>> lengths;
  };

  CostModel model_;
  std::map<CandidateKey, CandidateEntry> candidates_;
  /// Last profile's length-weight table, for the generation counter.
  std::map<std::int64_t, double> last_weights_;
  bool seen_profile_ = false;
  Stats stats_;
};

}  // namespace dphist::planner

#endif  // DPHIST_PLANNER_COST_MODEL_H_
