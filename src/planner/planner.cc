#include "planner/planner.h"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace dphist::planner {
namespace {

constexpr StrategyKind kDefaultStrategies[] = {
    StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
    StrategyKind::kWavelet};

/// Stable enumeration index of a strategy, for deterministic tie-breaks.
std::int64_t StrategyOrder(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLTilde:
      return 0;
    case StrategyKind::kHTilde:
      return 1;
    case StrategyKind::kHBar:
      return 2;
    case StrategyKind::kWavelet:
      return 3;
    case StrategyKind::kAuto:
      break;
  }
  DPHIST_CHECK_MSG(false, "unreachable: unknown StrategyKind");
  return -1;
}

std::vector<std::int64_t> DefaultShardCounts(std::int64_t domain_size,
                                             std::int64_t max_shards) {
  std::vector<std::int64_t> counts;
  const std::int64_t cap = std::min(max_shards, domain_size);
  for (std::int64_t s = 1; s <= cap; s *= 2) counts.push_back(s);
  return counts;
}

}  // namespace

Result<Plan> ChoosePlan(const WorkloadProfile& profile,
                        const SnapshotOptions& base,
                        const PlannerOptions& planner_options,
                        IncrementalCostModel* cost_cache) {
  if (profile.empty()) {
    return Status::InvalidArgument("cannot plan for an empty workload");
  }
  if (cost_cache != nullptr) {
    const CostModel& cached = cost_cache->model();
    const CostModel::Options& a = cached.options();
    const CostModel::Options& b = planner_options.cost;
    if (cached.domain_size() != profile.domain_size() ||
        a.max_analyzer_width != b.max_analyzer_width ||
        a.placements_per_length != b.placements_per_length ||
        a.use_dense_oracle != b.use_dense_oracle) {
      return Status::InvalidArgument(
          "cost cache was built for a different domain or cost options");
    }
  }
  std::vector<StrategyKind> strategies = planner_options.strategies;
  if (strategies.empty()) {
    strategies.assign(std::begin(kDefaultStrategies),
                      std::end(kDefaultStrategies));
  }
  for (StrategyKind kind : strategies) {
    if (kind == StrategyKind::kAuto) {
      return Status::InvalidArgument("kAuto cannot be a candidate strategy");
    }
  }
  std::vector<std::int64_t> shard_counts = planner_options.shard_counts;
  if (shard_counts.empty()) {
    shard_counts = DefaultShardCounts(profile.domain_size(),
                                      planner_options.max_shards);
  }
  for (std::int64_t shards : shard_counts) {
    if (shards < 1) {
      return Status::InvalidArgument("shard counts must be >= 1");
    }
  }

  const CostModel model(profile.domain_size(), planner_options.cost);
  Plan plan;
  plan.candidates.reserve(strategies.size() * shard_counts.size());
  for (StrategyKind kind : strategies) {
    for (std::int64_t shards : shard_counts) {
      Candidate candidate;
      candidate.options = base;
      candidate.options.strategy = kind;
      candidate.options.shards = shards;
      Result<QueryCost> cost =
          cost_cache != nullptr
              ? cost_cache->Evaluate(candidate.options, profile)
              : model.Evaluate(candidate.options, profile);
      if (cost.ok()) {
        candidate.feasible = true;
        candidate.mean_variance = cost.value().mean_variance;
        candidate.worst_variance = cost.value().worst_variance;
      } else {
        candidate.note = cost.status().message();
      }
      plan.candidates.push_back(std::move(candidate));
    }
  }

  const bool worst = planner_options.minimize_worst_case;
  auto rank = [worst](const Candidate& c) {
    return std::make_tuple(!c.feasible,
                           worst ? c.worst_variance : c.mean_variance,
                           StrategyOrder(c.options.strategy),
                           c.options.shards);
  };
  std::stable_sort(plan.candidates.begin(), plan.candidates.end(),
                   [&rank](const Candidate& a, const Candidate& b) {
                     return rank(a) < rank(b);
                   });
  if (plan.candidates.empty() || !plan.candidates.front().feasible) {
    // Candidates fail for their own reasons (analyzer width cap, bad
    // epsilon/branching from `base`, ...); surface one verbatim instead
    // of guessing.
    std::string reason = plan.candidates.empty()
                             ? "no candidates enumerated"
                             : plan.candidates.front().note;
    return Status::OutOfRange("no feasible candidate: " + reason);
  }
  const Candidate& best = plan.candidates.front();
  plan.options = best.options;
  plan.predicted_mean_variance = best.mean_variance;
  plan.predicted_worst_variance = best.worst_variance;
  return plan;
}

Result<SnapshotOptions> ResolveAutoStrategy(
    const SnapshotOptions& base, const WorkloadProfile& profile,
    const PlannerOptions& planner_options, IncrementalCostModel* cost_cache) {
  if (base.strategy != StrategyKind::kAuto) return base;
  Result<Plan> plan = ChoosePlan(profile, base, planner_options, cost_cache);
  if (!plan.ok()) return plan.status();
  return plan.value().options;
}

std::string FormatPlanTable(const Plan& plan,
                            const WorkloadProfile& profile) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "# workload: %.6g queries over domain %lld (%zu distinct "
                "lengths)\n",
                profile.total_weight(),
                static_cast<long long>(profile.domain_size()),
                profile.length_weights().size());
  out += line;
  std::snprintf(line, sizeof(line), "%-8s %6s %14s %14s  %s\n", "strategy",
                "shards", "mean_var", "worst_var", "note");
  out += line;
  for (const Candidate& c : plan.candidates) {
    if (c.feasible) {
      std::snprintf(line, sizeof(line), "%-8s %6lld %14.6g %14.6g\n",
                    StrategyKindName(c.options.strategy),
                    static_cast<long long>(c.options.shards),
                    c.mean_variance, c.worst_variance);
    } else {
      std::snprintf(line, sizeof(line), "%-8s %6lld %14s %14s  %s\n",
                    StrategyKindName(c.options.strategy),
                    static_cast<long long>(c.options.shards), "-", "-",
                    c.note.c_str());
    }
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "plan: strategy=%s shards=%lld mean_var=%.6g "
                "worst_var=%.6g\n",
                StrategyKindName(plan.options.strategy),
                static_cast<long long>(plan.options.shards),
                plan.predicted_mean_variance, plan.predicted_worst_variance);
  out += line;
  return out;
}

}  // namespace dphist::planner
