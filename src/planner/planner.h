// Cost-based strategy/shard planning for published DP releases.
//
// The planner enumerates candidate (StrategyKind, shard_count)
// configurations, costs each against a WorkloadProfile with the
// closed-form CostModel, and returns the variance-minimizing plan. This
// is the paper's Section 4 variance analysis acting as a query
// optimizer: unit-count traffic selects L~ (2/eps^2 beats any tree),
// long-range traffic selects a constrained hierarchy (O(log^3 n / eps^2)
// beats the linear-in-|q| identity strategy), and the shard count moves
// the crossover by trading tree depth against the number of independent
// noise terms a spanning query sums.
//
// Plans are deterministic: candidates are evaluated in a fixed order and
// ties break toward the earlier strategy and the fewer shards.

#ifndef DPHIST_PLANNER_PLANNER_H_
#define DPHIST_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "planner/cost_model.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

namespace dphist::planner {

/// Knobs for the candidate enumeration.
struct PlannerOptions {
  /// Strategies to consider; empty means every concrete kind
  /// (L~, H~, H-bar, wavelet).
  std::vector<StrategyKind> strategies;
  /// Shard counts to consider; empty means powers of two
  /// 1, 2, 4, ..., up to min(max_shards, domain size).
  std::vector<std::int64_t> shard_counts;
  std::int64_t max_shards = 64;
  /// Minimize the worst per-query variance instead of the
  /// profile-weighted mean.
  bool minimize_worst_case = false;
  CostModel::Options cost;
};

/// One evaluated configuration.
struct Candidate {
  SnapshotOptions options;
  double mean_variance = 0.0;
  double worst_variance = 0.0;
  bool feasible = false;
  /// Why the closed form was unavailable, when !feasible.
  std::string note;
};

/// The planner's decision plus the full evaluation table.
struct Plan {
  /// The chosen configuration, ready for Snapshot::Build. Inherits
  /// epsilon, branching, and the rounding/pruning protocol knobs from
  /// the base options passed to ChoosePlan.
  SnapshotOptions options;
  double predicted_mean_variance = 0.0;
  double predicted_worst_variance = 0.0;
  /// Every candidate, best first (infeasible candidates last).
  std::vector<Candidate> candidates;
};

/// Enumerates candidates around `base` (its epsilon, branching, and
/// protocol knobs are kept; strategy and shards are replaced by each
/// candidate's) and returns the cost-minimizing plan for `profile`.
/// Fails when no candidate is feasible or the profile is empty.
///
/// When `cost_cache` is non-null, candidates are costed through it
/// instead of a fresh CostModel, so repeated plans over a drifting
/// profile reuse every previously computed (candidate, length) variance
/// vector — the runtime's replan loop passes its long-lived cache here.
/// The cache must have been built for the same domain and the same
/// CostModel::Options as `planner_options.cost` (checked).
Result<Plan> ChoosePlan(const WorkloadProfile& profile,
                        const SnapshotOptions& base,
                        const PlannerOptions& planner_options = {},
                        IncrementalCostModel* cost_cache = nullptr);

/// Resolves StrategyKind::kAuto: when `base.strategy == kAuto`, plans
/// against `profile` and returns `base` with the chosen strategy and
/// shard count substituted; otherwise returns `base` unchanged.
Result<SnapshotOptions> ResolveAutoStrategy(
    const SnapshotOptions& base, const WorkloadProfile& profile,
    const PlannerOptions& planner_options = {},
    IncrementalCostModel* cost_cache = nullptr);

/// Renders the plan as an aligned human-readable table (the `dphist
/// plan` output): one row per candidate plus the chosen configuration.
std::string FormatPlanTable(const Plan& plan, const WorkloadProfile& profile);

}  // namespace dphist::planner

#endif  // DPHIST_PLANNER_PLANNER_H_
