#include "tools/cli_commands.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/csv.h"
#include "data/nettrace.h"
#include "data/search_logs.h"
#include "data/social_network.h"
#include "domain/histogram.h"
#include "estimators/unattributed.h"
#include "estimators/universal.h"
#include "planner/planner.h"
#include "planner/workload_profile.h"
#include "service/query_service.h"

namespace dphist::cli {
namespace {

constexpr char kUsage[] =
    "usage: dphist_cli <command> [flags]\n"
    "\n"
    "commands:\n"
    "  generate          --dataset nettrace|social|searchlogs --output P\n"
    "                    [--size N] [--seed S]\n"
    "  release-universal --input P --output P --epsilon E [--branching K]\n"
    "                    [--no-prune] [--no-round] [--seed S]\n"
    "  release-sorted    --input P --output P --epsilon E [--seed S]\n"
    "  query             --release P --lo X --hi Y\n"
    "  serve             --input P --queries P --epsilon E\n"
    "                    [--strategy hbar|htilde|ltilde|wavelet|auto]\n"
    "                    [--branching K] [--shards S] [--cache N]\n"
    "                    [--threads T] [--build-threads B] [--seed S]\n"
    "                    [--no-round] [--no-prune] [--max-shards M]\n"
    "                    [--strategies a,b,c] [--objective mean|worst]\n"
    "                    [--max-analyzer-width W]   (auto planning)\n"
    "  plan              --queries P --epsilon E (--input P | --domain N)\n"
    "                    [--branching K] [--max-shards M]\n"
    "                    [--strategies a,b,c] [--objective mean|worst]\n"
    "                    [--max-analyzer-width W]\n";

Status RequireFlag(const Flags& flags, const std::string& name) {
  if (!flags.Has(name)) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return Status::Ok();
}

/// Parses a comma-separated strategy list ("ltilde,hbar").
Result<std::vector<StrategyKind>> ParseStrategiesList(
    const std::string& csv) {
  std::vector<StrategyKind> strategies;
  std::string token;
  std::istringstream stream(csv);
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    auto kind = ParseStrategyKind(token);
    if (!kind.ok()) return kind.status();
    if (kind.value() == StrategyKind::kAuto) {
      return Status::InvalidArgument(
          "auto cannot be a candidate strategy in --strategies");
    }
    strategies.push_back(kind.value());
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("empty --strategies list");
  }
  return strategies;
}

/// Shared `plan`/`serve` planner knobs from flags.
Status FillPlannerOptions(const Flags& flags,
                          planner::PlannerOptions* options) {
  options->max_shards = flags.GetInt("max-shards", 64);
  if (options->max_shards < 1) {
    return Status::InvalidArgument("max-shards must be >= 1");
  }
  options->cost.max_analyzer_width =
      flags.GetInt("max-analyzer-width", 1024);
  if (options->cost.max_analyzer_width < 1) {
    return Status::InvalidArgument("max-analyzer-width must be >= 1");
  }
  if (flags.Has("strategies")) {
    auto strategies = ParseStrategiesList(flags.GetString("strategies", ""));
    if (!strategies.ok()) return strategies.status();
    options->strategies = strategies.value();
  }
  const std::string objective = flags.GetString("objective", "mean");
  if (objective == "worst") {
    options->minimize_worst_case = true;
  } else if (objective != "mean") {
    return Status::InvalidArgument("objective must be mean or worst");
  }
  return Status::Ok();
}

}  // namespace

Status RunGenerate(const Flags& flags, std::ostream& out) {
  for (const char* required : {"dataset", "output"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  std::string dataset = flags.GetString("dataset", "");
  std::string output = flags.GetString("output", "");
  std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::int64_t size = flags.GetInt("size", 0);

  Histogram data = Histogram::FromCounts({0});
  if (dataset == "nettrace") {
    NetTraceConfig config;
    if (size > 0) {
      config.num_hosts = size;
      config.num_connections = size * 5;
    }
    config.seed = seed;
    data = GenerateNetTrace(config);
  } else if (dataset == "social") {
    SocialNetworkConfig config;
    if (size > 0) config.num_nodes = size;
    config.seed = seed;
    data = GenerateSocialNetworkDegrees(config);
  } else if (dataset == "searchlogs") {
    TemporalSeriesConfig config;
    if (size > 0) config.num_slots = size;
    config.seed = seed;
    data = GenerateTemporalSeries(config);
  } else {
    return Status::InvalidArgument("unknown dataset: " + dataset);
  }
  Status s = SaveHistogramCsv(data, output);
  if (!s.ok()) return s;
  out << "wrote " << data.size() << " counts (total " << data.Total()
      << ") to " << output << "\n";
  return Status::Ok();
}

Status RunReleaseUniversal(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();

  UniversalOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);

  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  HBarEstimator estimator(data.value(), options, &rng);
  Histogram release(estimator.leaf_estimates(),
                    data.value().domain().attribute());
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << options.epsilon << " universal histogram over "
      << release.size() << " positions (tree height "
      << estimator.tree().height() << ") to "
      << flags.GetString("output", "") << "\n";
  return Status::Ok();
}

Status RunReleaseSorted(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  double epsilon = flags.GetDouble("epsilon", 1.0);
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  std::vector<double> noisy =
      SampleNoisySortedCounts(data.value(), epsilon, &rng);
  std::vector<double> sbar =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  Histogram release(std::move(sbar), "rank");
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << epsilon << " sorted histogram of "
      << release.size() << " counts to " << flags.GetString("output", "")
      << "\n";
  return Status::Ok();
}

Status RunQuery(const Flags& flags, std::ostream& out) {
  for (const char* required : {"release", "lo", "hi"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto release = LoadHistogramCsv(flags.GetString("release", ""));
  if (!release.ok()) return release.status();
  std::int64_t lo = flags.GetInt("lo", 0);
  std::int64_t hi = flags.GetInt("hi", 0);
  if (lo > hi || lo < 0 || hi >= release.value().size()) {
    return Status::OutOfRange("query range out of bounds");
  }
  const std::streamsize old_precision = out.precision(15);
  out << release.value().Count(Interval(lo, hi)) << "\n";
  out.precision(old_precision);
  return Status::Ok();
}

Status RunServe(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "queries", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  const std::int64_t n = data.value().size();

  SnapshotOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  auto strategy = ParseStrategyKind(flags.GetString("strategy", "hbar"));
  if (!strategy.ok()) return strategy.status();
  options.strategy = strategy.value();
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.shards = flags.GetInt("shards", 1);
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);
  options.build_threads = flags.GetInt("build-threads", 1);

  // Parse the workload before paying for the release.
  auto workload_result =
      planner::LoadWorkloadFile(flags.GetString("queries", ""), n);
  if (!workload_result.ok()) return workload_result.status();
  const std::vector<Interval>& workload = workload_result.value();

  QueryServiceOptions service_options;
  service_options.cache_capacity = flags.GetInt("cache", 1 << 16);
  Status planner_status = FillPlannerOptions(flags, &service_options.planner);
  if (!planner_status.ok()) return planner_status;
  QueryService service(service_options);

  // With --strategy auto the planner picks against this exact workload's
  // length profile (the best information we will ever have about it);
  // a concrete strategy never reads the profile, so skip building it.
  planner::WorkloadProfile profile(n);
  if (options.strategy == StrategyKind::kAuto) {
    for (const Interval& query : workload) profile.AddQuery(query);
  }
  auto published = service.Publish(
      data.value(), options,
      static_cast<std::uint64_t>(flags.GetInt("seed", 42)),
      profile.empty() ? nullptr : &profile);
  if (!published.ok()) return published.status();

  // Fan the workload out over worker threads in contiguous slices; each
  // slice is one batch, answered against the single published snapshot
  // and written into its own span of the shared answer vector.
  const std::int64_t threads =
      ResolveThreadCount(flags.GetInt("threads", 1, "DPHIST_THREADS"));
  std::vector<double> answers(workload.size());
  if (!workload.empty()) {
    const std::int64_t total = static_cast<std::int64_t>(workload.size());
    const std::int64_t slices = std::min(threads, total);
    const std::int64_t slice_width = (total + slices - 1) / slices;
    ParallelFor(slices, threads, [&](std::int64_t slice) {
      const std::int64_t begin = slice * slice_width;
      const std::int64_t end = std::min(total, begin + slice_width);
      if (begin >= end) return;
      service.QueryBatch(workload.data() + begin,
                         static_cast<std::size_t>(end - begin),
                         answers.data() + begin);
    });
  }

  // Default ostream precision (6 significant digits) would quantize
  // counts >= 1e6; 15 digits round-trips every integral count a double
  // can hold exactly, without decorating small integers.
  const std::streamsize old_precision = out.precision(15);
  for (double answer : answers) out << answer << "\n";
  out.precision(old_precision);
  AnswerCache::Stats stats = service.cache_stats();
  // Report the *resolved* strategy: with --strategy auto this is the
  // planner's choice, otherwise it echoes the flag.
  out << "# served " << workload.size() << " queries from epoch "
      << published.value()->epoch() << " ("
      << StrategyKindName(published.value()->strategy())
      << ", eps=" << options.epsilon
      << ", shards=" << published.value()->shard_count() << ", threads="
      << threads << ", cache hits=" << stats.hits << " misses="
      << stats.misses << ")\n";
  if (options.strategy == StrategyKind::kAuto) {
    out << "# planned strategy="
        << StrategyKindName(published.value()->strategy())
        << " shards=" << published.value()->options().shards << "\n";
  }
  return Status::Ok();
}

Status RunPlan(const Flags& flags, std::ostream& out) {
  for (const char* required : {"queries", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  std::int64_t n = 0;
  if (flags.Has("input")) {
    auto data = LoadHistogramCsv(flags.GetString("input", ""));
    if (!data.ok()) return data.status();
    n = data.value().size();
  } else if (flags.Has("domain")) {
    n = flags.GetInt("domain", 0);
    if (n < 1) return Status::InvalidArgument("domain must be >= 1");
  } else {
    return Status::InvalidArgument(
        "plan needs --input (histogram CSV) or --domain (size)");
  }

  SnapshotOptions base;
  base.epsilon = flags.GetDouble("epsilon", 1.0);
  if (base.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  base.branching = flags.GetInt("branching", 2);
  if (base.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }

  planner::PlannerOptions planner_options;
  Status s = FillPlannerOptions(flags, &planner_options);
  if (!s.ok()) return s;

  auto profile =
      planner::WorkloadProfile::FromQueryFile(flags.GetString("queries", ""),
                                              n);
  if (!profile.ok()) return profile.status();

  auto plan = planner::ChoosePlan(profile.value(), base, planner_options);
  if (!plan.ok()) return plan.status();
  out << planner::FormatPlanTable(plan.value(), profile.value());
  return Status::Ok();
}

int Main(int argc, const char* const* argv, std::ostream& out,
         std::ostream& err) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = flags.positional()[0];
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "generate") {
    status = RunGenerate(flags, out);
  } else if (command == "release-universal") {
    status = RunReleaseUniversal(flags, out);
  } else if (command == "release-sorted") {
    status = RunReleaseSorted(flags, out);
  } else if (command == "query") {
    status = RunQuery(flags, out);
  } else if (command == "serve") {
    status = RunServe(flags, out);
  } else if (command == "plan") {
    status = RunPlan(flags, out);
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    if (status.code() == StatusCode::kInvalidArgument) err << kUsage;
    return 1;
  }
  return 0;
}

}  // namespace dphist::cli
