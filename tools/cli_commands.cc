#include "tools/cli_commands.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/csv.h"
#include "data/nettrace.h"
#include "data/search_logs.h"
#include "data/social_network.h"
#include "domain/histogram.h"
#include "estimators/unattributed.h"
#include "estimators/universal.h"

namespace dphist::cli {
namespace {

constexpr char kUsage[] =
    "usage: dphist_cli <command> [flags]\n"
    "\n"
    "commands:\n"
    "  generate          --dataset nettrace|social|searchlogs --output P\n"
    "                    [--size N] [--seed S]\n"
    "  release-universal --input P --output P --epsilon E [--branching K]\n"
    "                    [--no-prune] [--no-round] [--seed S]\n"
    "  release-sorted    --input P --output P --epsilon E [--seed S]\n"
    "  query             --release P --lo X --hi Y\n";

Status RequireFlag(const Flags& flags, const std::string& name) {
  if (!flags.Has(name)) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return Status::Ok();
}

}  // namespace

Status RunGenerate(const Flags& flags, std::ostream& out) {
  for (const char* required : {"dataset", "output"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  std::string dataset = flags.GetString("dataset", "");
  std::string output = flags.GetString("output", "");
  std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::int64_t size = flags.GetInt("size", 0);

  Histogram data = Histogram::FromCounts({0});
  if (dataset == "nettrace") {
    NetTraceConfig config;
    if (size > 0) {
      config.num_hosts = size;
      config.num_connections = size * 5;
    }
    config.seed = seed;
    data = GenerateNetTrace(config);
  } else if (dataset == "social") {
    SocialNetworkConfig config;
    if (size > 0) config.num_nodes = size;
    config.seed = seed;
    data = GenerateSocialNetworkDegrees(config);
  } else if (dataset == "searchlogs") {
    TemporalSeriesConfig config;
    if (size > 0) config.num_slots = size;
    config.seed = seed;
    data = GenerateTemporalSeries(config);
  } else {
    return Status::InvalidArgument("unknown dataset: " + dataset);
  }
  Status s = SaveHistogramCsv(data, output);
  if (!s.ok()) return s;
  out << "wrote " << data.size() << " counts (total " << data.Total()
      << ") to " << output << "\n";
  return Status::Ok();
}

Status RunReleaseUniversal(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();

  UniversalOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);

  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  HBarEstimator estimator(data.value(), options, &rng);
  Histogram release(estimator.leaf_estimates(),
                    data.value().domain().attribute());
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << options.epsilon << " universal histogram over "
      << release.size() << " positions (tree height "
      << estimator.tree().height() << ") to "
      << flags.GetString("output", "") << "\n";
  return Status::Ok();
}

Status RunReleaseSorted(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  double epsilon = flags.GetDouble("epsilon", 1.0);
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  std::vector<double> noisy =
      SampleNoisySortedCounts(data.value(), epsilon, &rng);
  std::vector<double> sbar =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  Histogram release(std::move(sbar), "rank");
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << epsilon << " sorted histogram of "
      << release.size() << " counts to " << flags.GetString("output", "")
      << "\n";
  return Status::Ok();
}

Status RunQuery(const Flags& flags, std::ostream& out) {
  for (const char* required : {"release", "lo", "hi"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto release = LoadHistogramCsv(flags.GetString("release", ""));
  if (!release.ok()) return release.status();
  std::int64_t lo = flags.GetInt("lo", 0);
  std::int64_t hi = flags.GetInt("hi", 0);
  if (lo > hi || lo < 0 || hi >= release.value().size()) {
    return Status::OutOfRange("query range out of bounds");
  }
  out << release.value().Count(Interval(lo, hi)) << "\n";
  return Status::Ok();
}

int Main(int argc, const char* const* argv, std::ostream& out,
         std::ostream& err) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = flags.positional()[0];
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "generate") {
    status = RunGenerate(flags, out);
  } else if (command == "release-universal") {
    status = RunReleaseUniversal(flags, out);
  } else if (command == "release-sorted") {
    status = RunReleaseSorted(flags, out);
  } else if (command == "query") {
    status = RunQuery(flags, out);
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    if (status.code() == StatusCode::kInvalidArgument) err << kUsage;
    return 1;
  }
  return 0;
}

}  // namespace dphist::cli
