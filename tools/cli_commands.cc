#include "tools/cli_commands.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/csv.h"
#include "data/nettrace.h"
#include "data/search_logs.h"
#include "data/social_network.h"
#include "domain/histogram.h"
#include "estimators/unattributed.h"
#include "estimators/universal.h"
#include "service/query_service.h"

namespace dphist::cli {
namespace {

constexpr char kUsage[] =
    "usage: dphist_cli <command> [flags]\n"
    "\n"
    "commands:\n"
    "  generate          --dataset nettrace|social|searchlogs --output P\n"
    "                    [--size N] [--seed S]\n"
    "  release-universal --input P --output P --epsilon E [--branching K]\n"
    "                    [--no-prune] [--no-round] [--seed S]\n"
    "  release-sorted    --input P --output P --epsilon E [--seed S]\n"
    "  query             --release P --lo X --hi Y\n"
    "  serve             --input P --queries P --epsilon E\n"
    "                    [--strategy hbar|htilde|ltilde|wavelet]\n"
    "                    [--branching K] [--shards S] [--cache N]\n"
    "                    [--threads T] [--seed S] [--no-round]\n"
    "                    [--no-prune]\n";

Status RequireFlag(const Flags& flags, const std::string& name) {
  if (!flags.Has(name)) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return Status::Ok();
}

}  // namespace

Status RunGenerate(const Flags& flags, std::ostream& out) {
  for (const char* required : {"dataset", "output"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  std::string dataset = flags.GetString("dataset", "");
  std::string output = flags.GetString("output", "");
  std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::int64_t size = flags.GetInt("size", 0);

  Histogram data = Histogram::FromCounts({0});
  if (dataset == "nettrace") {
    NetTraceConfig config;
    if (size > 0) {
      config.num_hosts = size;
      config.num_connections = size * 5;
    }
    config.seed = seed;
    data = GenerateNetTrace(config);
  } else if (dataset == "social") {
    SocialNetworkConfig config;
    if (size > 0) config.num_nodes = size;
    config.seed = seed;
    data = GenerateSocialNetworkDegrees(config);
  } else if (dataset == "searchlogs") {
    TemporalSeriesConfig config;
    if (size > 0) config.num_slots = size;
    config.seed = seed;
    data = GenerateTemporalSeries(config);
  } else {
    return Status::InvalidArgument("unknown dataset: " + dataset);
  }
  Status s = SaveHistogramCsv(data, output);
  if (!s.ok()) return s;
  out << "wrote " << data.size() << " counts (total " << data.Total()
      << ") to " << output << "\n";
  return Status::Ok();
}

Status RunReleaseUniversal(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();

  UniversalOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);

  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  HBarEstimator estimator(data.value(), options, &rng);
  Histogram release(estimator.leaf_estimates(),
                    data.value().domain().attribute());
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << options.epsilon << " universal histogram over "
      << release.size() << " positions (tree height "
      << estimator.tree().height() << ") to "
      << flags.GetString("output", "") << "\n";
  return Status::Ok();
}

Status RunReleaseSorted(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  double epsilon = flags.GetDouble("epsilon", 1.0);
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  std::vector<double> noisy =
      SampleNoisySortedCounts(data.value(), epsilon, &rng);
  std::vector<double> sbar =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  Histogram release(std::move(sbar), "rank");
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << epsilon << " sorted histogram of "
      << release.size() << " counts to " << flags.GetString("output", "")
      << "\n";
  return Status::Ok();
}

Status RunQuery(const Flags& flags, std::ostream& out) {
  for (const char* required : {"release", "lo", "hi"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto release = LoadHistogramCsv(flags.GetString("release", ""));
  if (!release.ok()) return release.status();
  std::int64_t lo = flags.GetInt("lo", 0);
  std::int64_t hi = flags.GetInt("hi", 0);
  if (lo > hi || lo < 0 || hi >= release.value().size()) {
    return Status::OutOfRange("query range out of bounds");
  }
  const std::streamsize old_precision = out.precision(15);
  out << release.value().Count(Interval(lo, hi)) << "\n";
  out.precision(old_precision);
  return Status::Ok();
}

Status RunServe(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "queries", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  const std::int64_t n = data.value().size();

  SnapshotOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  auto strategy = ParseStrategyKind(flags.GetString("strategy", "hbar"));
  if (!strategy.ok()) return strategy.status();
  options.strategy = strategy.value();
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.shards = flags.GetInt("shards", 1);
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);

  // Parse the workload before paying for the release.
  std::ifstream queries_file(flags.GetString("queries", ""));
  if (!queries_file) {
    return Status::IoError("cannot open query file: " +
                           flags.GetString("queries", ""));
  }
  std::vector<Interval> workload;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(queries_file, line)) {
    ++line_number;
    for (char& c : line) {
      if (c == ',') c = ' ';
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank line
    }
    std::istringstream fields(line);
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!(fields >> lo) || !(fields >> hi)) {
      return Status::InvalidArgument(
          "query line " + std::to_string(line_number) +
          ": expected \"lo hi\"");
    }
    if (lo > hi || lo < 0 || hi >= n) {
      return Status::OutOfRange("query line " + std::to_string(line_number) +
                                ": range out of bounds");
    }
    workload.emplace_back(lo, hi);
  }

  QueryServiceOptions service_options;
  service_options.cache_capacity = flags.GetInt("cache", 1 << 16);
  QueryService service(service_options);
  auto published =
      service.Publish(data.value(), options,
                      static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  if (!published.ok()) return published.status();

  // Fan the workload out over worker threads in contiguous slices; each
  // slice is one batch, answered against the single published snapshot
  // and written into its own span of the shared answer vector.
  const std::int64_t threads =
      ResolveThreadCount(flags.GetInt("threads", 1, "DPHIST_THREADS"));
  std::vector<double> answers(workload.size());
  if (!workload.empty()) {
    const std::int64_t total = static_cast<std::int64_t>(workload.size());
    const std::int64_t slices = std::min(threads, total);
    const std::int64_t slice_width = (total + slices - 1) / slices;
    ParallelFor(slices, threads, [&](std::int64_t slice) {
      const std::int64_t begin = slice * slice_width;
      const std::int64_t end = std::min(total, begin + slice_width);
      if (begin >= end) return;
      service.QueryBatch(workload.data() + begin,
                         static_cast<std::size_t>(end - begin),
                         answers.data() + begin);
    });
  }

  // Default ostream precision (6 significant digits) would quantize
  // counts >= 1e6; 15 digits round-trips every integral count a double
  // can hold exactly, without decorating small integers.
  const std::streamsize old_precision = out.precision(15);
  for (double answer : answers) out << answer << "\n";
  out.precision(old_precision);
  AnswerCache::Stats stats = service.cache_stats();
  out << "# served " << workload.size() << " queries from epoch "
      << published.value()->epoch() << " ("
      << StrategyKindName(options.strategy) << ", eps=" << options.epsilon
      << ", shards=" << published.value()->shard_count() << ", threads="
      << threads << ", cache hits=" << stats.hits << " misses="
      << stats.misses << ")\n";
  return Status::Ok();
}

int Main(int argc, const char* const* argv, std::ostream& out,
         std::ostream& err) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = flags.positional()[0];
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "generate") {
    status = RunGenerate(flags, out);
  } else if (command == "release-universal") {
    status = RunReleaseUniversal(flags, out);
  } else if (command == "release-sorted") {
    status = RunReleaseSorted(flags, out);
  } else if (command == "query") {
    status = RunQuery(flags, out);
  } else if (command == "serve") {
    status = RunServe(flags, out);
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    if (status.code() == StatusCode::kInvalidArgument) err << kUsage;
    return 1;
  }
  return 0;
}

}  // namespace dphist::cli
