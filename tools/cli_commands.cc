#include "tools/cli_commands.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/csv.h"
#include "data/nettrace.h"
#include "data/search_logs.h"
#include "data/social_network.h"
#include "domain/histogram.h"
#include "engine/answer_engine.h"
#include "engine/kernels.h"
#include "estimators/unattributed.h"
#include "estimators/universal.h"
#include "mechanism/privacy_accountant.h"
#include "planner/planner.h"
#include "planner/workload_profile.h"
#include "runtime/epoch_manager.h"
#include "runtime/serving_loop.h"
#include "runtime/session.h"
#include "runtime/transport.h"
#include "service/query_service.h"
#include "storage/epoch_store.h"
#include "tools/lint/lint.h"

namespace dphist::cli {
namespace {

constexpr char kUsage[] =
    "usage: dphist_cli <command> [flags]\n"
    "\n"
    "commands:\n"
    "  generate          --dataset nettrace|social|searchlogs --output P\n"
    "                    [--size N] [--seed S]\n"
    "  release-universal --input P --output P --epsilon E [--branching K]\n"
    "                    [--no-prune] [--no-round] [--seed S]\n"
    "  release-sorted    --input P --output P --epsilon E [--seed S]\n"
    "  query             --release P --lo X --hi Y\n"
    "  serve             --input P --epsilon E\n"
    "                    (--queries P | --stdin | --listen PORT)\n"
    "                    [--strategy hbar|htilde|ltilde|wavelet|auto]\n"
    "                    [--branching K] [--shards S] [--cache N]\n"
    "                    [--threads T] [--build-threads B] [--seed S]\n"
    "                    [--kernel auto|scalar|sse2|avx2]\n"
    "                    [--no-round] [--no-prune] [--max-shards M]\n"
    "                    [--strategies a,b,c] [--objective mean|worst]\n"
    "                    [--dense-oracle [--max-analyzer-width W]]\n"
    "                                               (auto planning)\n"
    "                    [--replan-every N] [--replan-drift X]\n"
    "                    [--drift-check-every N] [--replan-sync]\n"
    "                    [--reservoir N] [--epsilon-budget B]\n"
    "                    [--state-dir D]  (durable WAL + snapshot:\n"
    "                     restart resumes the epsilon ledger and the\n"
    "                     last published epoch bit-identically)\n"
    "                    [--max-sessions N] [--port-file P]\n"
    "                    [--workers N] [--bind-addr A] [--auth-token T]\n"
    "                                                  (--listen)\n"
    "                    (--stdin REPL: q lo hi | qb k lo hi ... |\n"
    "                     stats | replan | quit)\n"
    "                    (--listen 0 picks an ephemeral port; every\n"
    "                     connection is its own session — text REPL or\n"
    "                     binary frames — multiplexed onto a fixed pool\n"
    "                     of --workers readiness-loop threads over one\n"
    "                     shared release lifecycle)\n"
    "  client            --port P [--host A] [--auth-token T] [--binary]\n"
    "                    [--queries P]  (else reads commands from stdin)\n"
    "                    (drives one serve --listen session and prints\n"
    "                     the transcript; --binary speaks the pipelined\n"
    "                     frame protocol and renders the same transcript\n"
    "                     a text session would produce)\n"
    "  plan              --queries P --epsilon E (--input P | --domain N)\n"
    "                    [--branching K] [--max-shards M]\n"
    "                    [--strategies a,b,c] [--objective mean|worst]\n"
    "                    [--dense-oracle [--max-analyzer-width W]]\n"
    "  recover           --state-dir D [--inspect]\n"
    "                    (replay a serve --state-dir directory offline:\n"
    "                     ledger total, last epoch, persisted snapshot;\n"
    "                     --inspect lists every WAL spend record)\n"
    "  lint              [--root D] [--config P] [--baseline P]\n"
    "                    [--write-baseline] [--summary-md P]\n"
    "                    (repo invariant checker over root/src: serving-\n"
    "                     path asserts, hot-file allocations, unguarded\n"
    "                     mutexes, non-Status factories; ratcheted\n"
    "                     baseline — see tools/lint/lint.h)\n";

Status RequireFlag(const Flags& flags, const std::string& name) {
  if (!flags.Has(name)) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return Status::Ok();
}

/// Parses a comma-separated strategy list ("ltilde,hbar").
Result<std::vector<StrategyKind>> ParseStrategiesList(
    const std::string& csv) {
  std::vector<StrategyKind> strategies;
  std::string token;
  std::istringstream stream(csv);
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    auto kind = ParseStrategyKind(token);
    if (!kind.ok()) return kind.status();
    if (kind.value() == StrategyKind::kAuto) {
      return Status::InvalidArgument(
          "auto cannot be a candidate strategy in --strategies");
    }
    strategies.push_back(kind.value());
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("empty --strategies list");
  }
  return strategies;
}

/// Shared `plan`/`serve` planner knobs from flags.
Status FillPlannerOptions(const Flags& flags,
                          planner::PlannerOptions* options) {
  options->max_shards = flags.GetInt("max-shards", 64);
  if (options->max_shards < 1) {
    return Status::InvalidArgument("max-shards must be >= 1");
  }
  // The dense Cholesky oracle is the recurrence path's independent test
  // oracle; --max-analyzer-width is its safety cap (the default
  // recurrence closed forms are exact at every width and ignore it).
  options->cost.use_dense_oracle = flags.Has("dense-oracle");
  options->cost.max_analyzer_width =
      flags.GetInt("max-analyzer-width", 1024);
  if (options->cost.max_analyzer_width < 1) {
    return Status::InvalidArgument("max-analyzer-width must be >= 1");
  }
  if (flags.Has("strategies")) {
    auto strategies = ParseStrategiesList(flags.GetString("strategies", ""));
    if (!strategies.ok()) return strategies.status();
    options->strategies = strategies.value();
  }
  const std::string objective = flags.GetString("objective", "mean");
  if (objective == "worst") {
    options->minimize_worst_case = true;
  } else if (objective != "mean") {
    return Status::InvalidArgument("objective must be mean or worst");
  }
  return Status::Ok();
}

}  // namespace

Status RunGenerate(const Flags& flags, std::ostream& out) {
  for (const char* required : {"dataset", "output"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  std::string dataset = flags.GetString("dataset", "");
  std::string output = flags.GetString("output", "");
  std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::int64_t size = flags.GetInt("size", 0);

  Histogram data = Histogram::FromCounts({0});
  if (dataset == "nettrace") {
    NetTraceConfig config;
    if (size > 0) {
      config.num_hosts = size;
      config.num_connections = size * 5;
    }
    config.seed = seed;
    data = GenerateNetTrace(config);
  } else if (dataset == "social") {
    SocialNetworkConfig config;
    if (size > 0) config.num_nodes = size;
    config.seed = seed;
    data = GenerateSocialNetworkDegrees(config);
  } else if (dataset == "searchlogs") {
    TemporalSeriesConfig config;
    if (size > 0) config.num_slots = size;
    config.seed = seed;
    data = GenerateTemporalSeries(config);
  } else {
    return Status::InvalidArgument("unknown dataset: " + dataset);
  }
  Status s = SaveHistogramCsv(data, output);
  if (!s.ok()) return s;
  out << "wrote " << data.size() << " counts (total " << data.Total()
      << ") to " << output << "\n";
  return Status::Ok();
}

Status RunReleaseUniversal(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();

  UniversalOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);

  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  HBarEstimator estimator(data.value(), options, &rng);
  Histogram release(estimator.leaf_estimates(),
                    data.value().domain().attribute());
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << options.epsilon << " universal histogram over "
      << release.size() << " positions (tree height "
      << estimator.tree().height() << ") to "
      << flags.GetString("output", "") << "\n";
  return Status::Ok();
}

Status RunReleaseSorted(const Flags& flags, std::ostream& out) {
  for (const char* required : {"input", "output", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  double epsilon = flags.GetDouble("epsilon", 1.0);
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  std::vector<double> noisy =
      SampleNoisySortedCounts(data.value(), epsilon, &rng);
  std::vector<double> sbar =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  Histogram release(std::move(sbar), "rank");
  Status s = SaveHistogramCsv(release, flags.GetString("output", ""));
  if (!s.ok()) return s;
  out << "released eps=" << epsilon << " sorted histogram of "
      << release.size() << " counts to " << flags.GetString("output", "")
      << "\n";
  return Status::Ok();
}

Status RunQuery(const Flags& flags, std::ostream& out) {
  for (const char* required : {"release", "lo", "hi"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  auto release = LoadHistogramCsv(flags.GetString("release", ""));
  if (!release.ok()) return release.status();
  std::int64_t lo = flags.GetInt("lo", 0);
  std::int64_t hi = flags.GetInt("hi", 0);
  if (lo > hi || lo < 0 || hi >= release.value().size()) {
    return Status::OutOfRange("query range out of bounds");
  }
  const std::streamsize old_precision = out.precision(15);
  out << release.value().Count(Interval(lo, hi)) << "\n";
  out.precision(old_precision);
  return Status::Ok();
}

Status RunServe(const Flags& flags, std::istream& in, std::ostream& out) {
  for (const char* required : {"input", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  const bool streaming = flags.GetBool("stdin", false);
  const bool listening = flags.Has("listen");
  if ((streaming && listening) ||
      (listening && flags.Has("queries")) ||
      (streaming && flags.Has("queries"))) {
    return Status::InvalidArgument(
        "--queries, --stdin, and --listen are exclusive");
  }
  if (!streaming && !listening) {
    Status s = RequireFlag(flags, "queries");
    if (!s.ok()) return s;
  }
  auto data = LoadHistogramCsv(flags.GetString("input", ""));
  if (!data.ok()) return data.status();
  const std::int64_t n = data.value().size();

  SnapshotOptions options;
  options.epsilon = flags.GetDouble("epsilon", 1.0);
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  auto strategy = ParseStrategyKind(flags.GetString("strategy", "hbar"));
  if (!strategy.ok()) return strategy.status();
  options.strategy = strategy.value();
  options.branching = flags.GetInt("branching", 2);
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  options.shards = flags.GetInt("shards", 1);
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  options.round_to_nonnegative_integers = !flags.GetBool("no-round", false);
  options.prune_nonpositive_subtrees = !flags.GetBool("no-prune", false);
  options.build_threads = flags.GetInt("build-threads", 1);

  QueryServiceOptions service_options;
  service_options.cache_capacity = flags.GetInt("cache", 1 << 16);
  service_options.observed_reservoir = flags.GetInt("reservoir", 0);
  if (service_options.observed_reservoir < 0) {
    return Status::InvalidArgument("reservoir must be >= 0");
  }
  Status planner_status = FillPlannerOptions(flags, &service_options.planner);
  if (!planner_status.ok()) return planner_status;

  runtime::EpochManagerOptions manager_options;
  manager_options.base = options;
  manager_options.planner = service_options.planner;
  manager_options.replan_every = flags.GetInt("replan-every", 0);
  manager_options.drift_ratio = flags.GetDouble("replan-drift", 0.0);
  manager_options.drift_check_every = flags.GetInt("drift-check-every", 256);
  manager_options.async = !flags.GetBool("replan-sync", false);
  manager_options.epsilon_budget = flags.GetDouble("epsilon-budget", 0.0);
  if (manager_options.replan_every < 0 ||
      manager_options.drift_ratio < 0.0 ||
      manager_options.drift_check_every < 1 ||
      manager_options.epsilon_budget < 0.0) {
    return Status::InvalidArgument(
        "replan-every/replan-drift/epsilon-budget must be >= 0 and "
        "drift-check-every >= 1");
  }

  // --state-dir makes the lifecycle durable: every budget spend hits the
  // WAL before its release becomes visible, and a restart replays the
  // ledger and re-serves the last persisted epoch bit-identically.
  std::unique_ptr<storage::EpochStore> store;
  if (flags.Has("state-dir")) {
    auto opened = storage::EpochStore::Open(flags.GetString("state-dir", ""));
    if (!opened.ok()) return opened.status();
    store = std::move(opened).value();
    manager_options.store = store.get();
  }

  QueryService service(service_options);
  runtime::EpochManager manager(
      &service, data.value(), manager_options,
      static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  runtime::SessionWriter writer(out);
  runtime::ServingLoopOptions loop_options;
  loop_options.threads =
      ResolveThreadCount(flags.GetInt("threads", 1, "DPHIST_THREADS"));

  // --kernel pins the answer engine's dispatch level (the flag form of
  // the DPHIST_FORCE_KERNEL env override; "auto" restores detection).
  // Levels the CPU lacks clamp to the best supported one.
  if (flags.Has("kernel")) {
    const std::string kernel_name = flags.GetString("kernel", "auto");
    if (kernel_name == "auto") {
      engine::ForceKernel(std::nullopt);
    } else {
      Result<engine::KernelKind> kind = engine::ParseKernelKind(kernel_name);
      if (!kind.ok()) return kind.status();
      engine::ForceKernel(kind.value());
    }
  }

  // With a state directory, recovery runs first: a restored snapshot is
  // re-served as-is (no fresh epsilon spent), and only a fresh/empty
  // directory falls through to a first publish — which the replayed
  // ledger still gates, so a restart can never overshoot the budget.
  auto publish_initial = [&](const planner::WorkloadProfile* profile)
      -> Result<runtime::ReplanOutcome> {
    if (store != nullptr) {
      Result<runtime::ReplanOutcome> recovered = manager.Recover();
      if (!recovered.ok()) return recovered;
      if (recovered.value().republished) {
        out << "# recovered epoch=" << recovered.value().epoch
            << " epsilon_spent=" << manager.stats().epsilon_spent
            << " from " << store->dir() << "\n";
        return recovered;
      }
    }
    return manager.PublishInitial(profile);
  };

  runtime::SessionSummary summary;
  Result<runtime::ReplanOutcome> initial = Status::Internal("unset");
  if (listening) {
    // Network mode: publish once, then let the socket transport fan
    // accepted connections into streaming sessions over this one
    // service + manager. Each connection greets and reports on its own
    // socket; `out` only carries the listener lifecycle lines.
    runtime::TransportOptions transport_options;
    transport_options.port = static_cast<int>(flags.GetInt("listen", 0));
    if (transport_options.port < 0 || transport_options.port > 65535) {
      return Status::InvalidArgument("listen port must be in [0, 65535]");
    }
    transport_options.max_sessions = flags.GetInt("max-sessions", 0);
    if (transport_options.max_sessions < 0) {
      return Status::InvalidArgument("max-sessions must be >= 0");
    }
    transport_options.workers =
        static_cast<int>(flags.GetInt("workers", 2));
    if (transport_options.workers < 1) {
      return Status::InvalidArgument("workers must be >= 1");
    }
    transport_options.bind_addr =
        flags.GetString("bind-addr", "127.0.0.1");
    transport_options.auth_token = flags.GetString("auth-token", "");
    transport_options.loop = loop_options;

    initial = publish_initial(nullptr);
    if (!initial.ok()) return initial.status();
    runtime::SocketServer server(service, manager, transport_options);
    Status started = server.Start();
    if (!started.ok()) return started;

    const Snapshot& snap = *initial.value().snapshot;
    out << "# listening port=" << server.port() << " n=" << n
        << " epoch=" << snap.epoch() << " strategy="
        << StrategyKindName(snap.strategy()) << " eps=" << snap.epsilon()
        << "\n";
    out.flush();
    // Scripts read the resolved port from --port-file instead of
    // scraping stdout (the CI smoke and the in-process CLI test do).
    if (flags.Has("port-file")) {
      std::ofstream port_file(flags.GetString("port-file", ""));
      if (!port_file) {
        server.Stop();
        return Status::IoError("cannot write port file");
      }
      port_file << server.port() << "\n";
    }

    if (transport_options.max_sessions > 0) {
      // Bounded run: exit once the configured number of sessions has
      // been served (the deterministic shape CI and tests rely on).
      server.WaitUntilStopped();
    } else {
      // Unbounded run: `in` (stdin) is the shutdown control — EOF or a
      // "quit" line stops the listener.
      std::string line;
      while (std::getline(in, line)) {
        if (line == "quit") break;
      }
    }
    server.Stop();

    const runtime::SocketServer::Stats tstats = server.stats();
    AnswerCache::Stats cache = service.cache_stats();
    out << "# served " << tstats.queries << " queries over "
        << tstats.completed << " sessions (errors=" << tstats.session_errors
        << " write_errors=" << tstats.write_errors
        << " auth_failures=" << tstats.auth_failures
        << " text=" << tstats.text_sessions
        << " binary=" << tstats.binary_sessions
        << " batches=" << tstats.batches
        << " replans_announced=" << tstats.replans_announced
        << " engine_kernel="
        << engine::KernelKindName(engine::ActiveKernel())
        << " engine_batches=" << engine::GlobalEngineCounters().total_batches()
        << " engine_queries=" << engine::GlobalEngineCounters().total_queries()
        << ", cache hits=" << cache.hits << " misses=" << cache.misses
        << ")\n";
    return Status::Ok();
  }
  if (streaming) {
    // REPL over `in`: publish first (auto plans against whatever has
    // been observed — nothing yet, so the neutral geometric sweep),
    // greet, then serve until quit/EOF. Replans land mid-session.
    initial = publish_initial(nullptr);
    if (!initial.ok()) return initial.status();
    const Snapshot& snap = *initial.value().snapshot;
    runtime::WriteServingBanner(writer, snap);
    if (initial.value().planned) {
      writer.PlanNote(initial.value().plan, snap.epoch(), "initial");
    }
    writer.Flush();
    auto session =
        runtime::RunStreamingSession(in, writer, service, manager,
                                     loop_options);
    if (!session.ok()) return session.status();
    summary = session.value();
  } else {
    // Batch mode: one parse pass through the session grammar (the
    // workload-file format is its bare-range subset), profile built
    // from the whole script — the best picture of the workload a
    // planner will ever get — then the scripted loop answers runs of
    // queries with the threaded fan-out.
    std::ifstream file(flags.GetString("queries", ""));
    if (!file) {
      return Status::IoError("cannot open query file: " +
                             flags.GetString("queries", ""));
    }
    auto script = runtime::ReadSessionScript(file, n);
    if (!script.ok()) return script.status();

    planner::WorkloadProfile profile(n);
    if (options.strategy == StrategyKind::kAuto) {
      for (const runtime::SessionCommand& command : script.value()) {
        for (const Interval& query : command.ranges) {
          profile.AddQuery(query);
        }
      }
    }
    initial = publish_initial(profile.empty() ? nullptr : &profile);
    if (!initial.ok()) return initial.status();
    auto session = runtime::RunScriptedSession(script.value(), writer,
                                               service, manager,
                                               loop_options);
    if (!session.ok()) return session.status();
    summary = session.value();
  }

  std::shared_ptr<const Snapshot> current = service.snapshot();
  AnswerCache::Stats stats = service.cache_stats();
  const std::uint64_t report_epoch =
      summary.last_epoch != 0 ? summary.last_epoch : current->epoch();
  // Report the *resolved* strategy: with --strategy auto this is the
  // planner's choice, otherwise it echoes the flag.
  out << "# served " << summary.queries << " queries from epoch "
      << report_epoch << " (" << StrategyKindName(current->strategy())
      << ", eps=" << options.epsilon << ", shards="
      << current->shard_count() << ", threads=" << loop_options.threads
      << ", engine_kernel=" << engine::KernelKindName(engine::ActiveKernel())
      << " engine_batches=" << engine::GlobalEngineCounters().total_batches()
      << " engine_queries=" << engine::GlobalEngineCounters().total_queries()
      << ", cache hits=" << stats.hits << " misses=" << stats.misses
      << ")\n";
  if (!streaming && initial.value().planned) {
    writer.PlanNote(initial.value().plan, initial.value().epoch, "initial");
  }
  return Status::Ok();
}

namespace {

/// Renders one server push/reply frame the way a text session transcript
/// would, so a binary client's output projects onto a text client's.
void RenderFrame(const runtime::BinaryClient::OwnedFrame& frame,
                 bool batch_receipt, std::ostream& out) {
  namespace wire = runtime::wire;
  switch (frame.type) {
    case wire::FrameType::kAnswers: {
      wire::AnswersFrame answers;
      if (!wire::ParseAnswers(frame.payload, &answers).ok()) {
        out << "error: malformed ANSWERS frame\n";
        return;
      }
      std::string lines;
      for (double value : answers.values) {
        runtime::AppendAnswerLine(value, &lines);
      }
      out << lines;
      if (batch_receipt) {
        out << "# batch n=" << answers.values.size()
            << " epoch=" << answers.epoch << "\n";
      }
      return;
    }
    case wire::FrameType::kPlan: {
      wire::PlanFrame plan;
      if (!wire::ParsePlan(frame.payload, &plan).ok()) {
        out << "error: malformed PLAN frame\n";
        return;
      }
      const std::streamsize old_precision = out.precision(6);
      out << "# planned strategy=" << plan.strategy
          << " shards=" << plan.shards << " epoch=" << plan.epoch
          << " reason=" << plan.reason
          << " predicted_mean_var=" << plan.predicted_mean_var << "\n";
      out.precision(old_precision);
      return;
    }
    case wire::FrameType::kStatsText: {
      wire::StatsTextFrame stats;
      if (!wire::ParseStatsText(frame.payload, &stats).ok()) {
        out << "error: malformed STATS_TEXT frame\n";
        return;
      }
      out << "# " << stats.text << "\n";
      return;
    }
    case wire::FrameType::kNote: {
      std::string text;
      if (!wire::ParseNote(frame.payload, &text).ok()) {
        out << "error: malformed NOTE frame\n";
        return;
      }
      out << "# " << text << "\n";
      return;
    }
    case wire::FrameType::kError: {
      wire::ErrorFrame error;
      if (!wire::ParseError(frame.payload, &error).ok()) {
        out << "error: malformed ERROR frame\n";
        return;
      }
      out << "error: " << error.message << "\n";
      return;
    }
    default:
      out << "error: unexpected frame type "
          << static_cast<int>(frame.type) << "\n";
      return;
  }
}

/// The frame-protocol client session: parse the whole script locally,
/// pipeline every request in one flush, then render replies and pushes
/// in arrival order (which matches the text transcript order — the
/// server polls triggers after each command).
Status RunBinaryClientSession(const std::string& host, int port,
                              const std::string& auth_token,
                              const std::vector<std::string>& lines,
                              std::ostream& out) {
  auto connected = runtime::BinaryClient::Connect(host, port, auth_token);
  if (!connected.ok()) return connected.status();
  std::unique_ptr<runtime::BinaryClient> client =
      std::move(connected).value();
  out << client->banner() << "\n";
  const std::int64_t domain_size =
      static_cast<std::int64_t>(client->hello().domain_size);

  // id -> whether this command was a `qb` (receipt line) or a `q`.
  std::vector<bool> batch_by_id(1, false);
  std::uint64_t next_id = 1;
  std::int64_t line_number = 0;
  bool sent_goodbye = false;
  for (const std::string& line : lines) {
    line_number += 1;
    runtime::SessionCommand command;
    Result<bool> parsed = runtime::ParseSessionLine(line, domain_size,
                                                    line_number, &command);
    if (!parsed.ok()) {
      // Match the text server's behavior for a malformed line: one
      // error line, session continues.
      out << "error: " << parsed.status().ToString() << "\n";
      continue;
    }
    if (!parsed.value()) continue;  // blank or comment
    switch (command.verb) {
      case runtime::SessionVerb::kQuery:
      case runtime::SessionVerb::kBatch:
        client->SendQuery(next_id, /*expect_epoch=*/0,
                          command.ranges.data(), command.ranges.size());
        batch_by_id.push_back(command.verb ==
                              runtime::SessionVerb::kBatch);
        next_id += 1;
        break;
      case runtime::SessionVerb::kStats:
        client->SendStats(next_id);
        batch_by_id.push_back(false);
        next_id += 1;
        break;
      case runtime::SessionVerb::kReplan:
        client->SendReplan(next_id);
        batch_by_id.push_back(false);
        next_id += 1;
        break;
      case runtime::SessionVerb::kQuit:
        client->SendGoodbye();
        sent_goodbye = true;
        break;
    }
    if (sent_goodbye) break;
  }
  if (!sent_goodbye) client->SendGoodbye();
  Status flushed = client->Flush();
  if (!flushed.ok()) return flushed;

  while (true) {
    auto frame = client->ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame.value().type == runtime::wire::FrameType::kBye) {
      runtime::wire::ByeFrame bye;
      Status parsed =
          runtime::wire::ParseBye(frame.value().payload, &bye);
      if (!parsed.ok()) return parsed;
      out << "# served " << bye.queries << " queries from epoch "
          << bye.epoch << "\n";
      return Status::Ok();
    }
    bool batch_receipt = false;
    if (frame.value().type == runtime::wire::FrameType::kAnswers) {
      runtime::wire::AnswersFrame answers;
      if (runtime::wire::ParseAnswers(frame.value().payload, &answers)
              .ok() &&
          answers.id < batch_by_id.size()) {
        batch_receipt = batch_by_id[answers.id];
      }
    }
    RenderFrame(frame.value(), batch_receipt, out);
  }
}

/// The text-protocol client session: ship the whole script, then echo
/// everything the server says until it closes.
Status RunTextClientSession(const std::string& host, int port,
                            const std::string& auth_token,
                            const std::vector<std::string>& lines,
                            std::ostream& out) {
  auto connected = runtime::ConnectTcp(host, port);
  if (!connected.ok()) return connected.status();
  std::unique_ptr<runtime::SocketStream> stream =
      std::move(connected).value();
  if (!auth_token.empty()) *stream << "auth " << auth_token << "\n";
  bool sent_quit = false;
  for (const std::string& line : lines) {
    *stream << line << "\n";
    if (line == "quit") {
      sent_quit = true;
      break;
    }
  }
  if (!sent_quit) *stream << "quit\n";
  stream->flush();
  if (stream->write_errors() > 0) {
    return Status::IoError("failed to send the session script");
  }
  std::string reply;
  while (std::getline(*stream, reply)) out << reply << "\n";
  return Status::Ok();
}

}  // namespace

Status RunClient(const Flags& flags, std::istream& in, std::ostream& out) {
  Status s = RequireFlag(flags, "port");
  if (!s.ok()) return s;
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("port must be in [1, 65535]");
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  const std::string auth_token = flags.GetString("auth-token", "");

  std::vector<std::string> lines;
  std::string line;
  if (flags.Has("queries")) {
    std::ifstream file(flags.GetString("queries", ""));
    if (!file) {
      return Status::IoError("cannot open query file: " +
                             flags.GetString("queries", ""));
    }
    while (std::getline(file, line)) lines.push_back(line);
  } else {
    while (std::getline(in, line)) lines.push_back(line);
  }

  if (flags.GetBool("binary", false)) {
    return RunBinaryClientSession(host, port, auth_token, lines, out);
  }
  return RunTextClientSession(host, port, auth_token, lines, out);
}

Status RunPlan(const Flags& flags, std::ostream& out) {
  for (const char* required : {"queries", "epsilon"}) {
    Status s = RequireFlag(flags, required);
    if (!s.ok()) return s;
  }
  std::int64_t n = 0;
  if (flags.Has("input")) {
    auto data = LoadHistogramCsv(flags.GetString("input", ""));
    if (!data.ok()) return data.status();
    n = data.value().size();
  } else if (flags.Has("domain")) {
    n = flags.GetInt("domain", 0);
    if (n < 1) return Status::InvalidArgument("domain must be >= 1");
  } else {
    return Status::InvalidArgument(
        "plan needs --input (histogram CSV) or --domain (size)");
  }

  SnapshotOptions base;
  base.epsilon = flags.GetDouble("epsilon", 1.0);
  if (base.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  base.branching = flags.GetInt("branching", 2);
  if (base.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }

  planner::PlannerOptions planner_options;
  Status s = FillPlannerOptions(flags, &planner_options);
  if (!s.ok()) return s;

  auto profile =
      planner::WorkloadProfile::FromQueryFile(flags.GetString("queries", ""),
                                              n);
  if (!profile.ok()) return profile.status();

  auto plan = planner::ChoosePlan(profile.value(), base, planner_options);
  if (!plan.ok()) return plan.status();
  out << planner::FormatPlanTable(plan.value(), profile.value());
  return Status::Ok();
}

Status RunRecover(const Flags& flags, std::ostream& out) {
  Status s = RequireFlag(flags, "state-dir");
  if (!s.ok()) return s;
  auto store = storage::EpochStore::Open(flags.GetString("state-dir", ""));
  if (!store.ok()) return store.status();
  auto recovered = store.value()->Recover();
  if (!recovered.ok()) return recovered.status();
  const storage::RecoveredState& state = recovered.value();

  // Fold the ledger exactly as a restarted server would, so the total
  // printed here is the total the server will gate against. The budget
  // is irrelevant to the fold; import never re-gates.
  PrivacyAccountant accountant(std::numeric_limits<double>::infinity());
  std::vector<PrivacyAccountant::Entry> ledger = state.ledger;
  Status imported = accountant.ImportLedger(std::move(ledger));
  if (!imported.ok()) return imported;

  const std::streamsize old_precision = out.precision(17);
  out << "# state-dir " << store.value()->dir() << "\n"
      << "ledger_entries " << state.ledger.size() << "\n"
      << "epsilon_spent " << accountant.spent() << "\n"
      << "last_swap_epoch " << state.last_swap_epoch << "\n"
      << "wal_tail_torn " << (state.wal_tail_torn ? 1 : 0) << "\n";
  if (state.snapshot != nullptr) {
    out << "snapshot epoch=" << state.snapshot->epoch()
        << " n=" << state.snapshot->domain_size() << " strategy="
        << StrategyKindName(state.snapshot->strategy())
        << " shards=" << state.snapshot->shard_count()
        << " eps=" << state.snapshot->epsilon() << "\n";
  } else {
    out << "snapshot none\n";
  }
  out << "profile " << (state.profile.has_value() ? "present" : "none")
      << "\n";
  if (flags.GetBool("inspect", false)) {
    std::size_t index = 0;
    for (const PrivacyAccountant::Entry& entry : state.ledger) {
      out << "spend " << index++ << " eps=" << entry.epsilon << " purpose=\""
          << entry.purpose << "\"\n";
    }
  }
  out.precision(old_precision);
  return Status::Ok();
}

Status RunLint(const Flags& flags, std::ostream& out) {
  const std::string root = flags.GetString("root", ".");
  lint::Config config;
  std::string error;
  std::string config_path = flags.GetString("config", "");
  if (config_path.empty()) {
    const std::string candidate = root + "/tools/lint/dphist_lint.conf";
    if (std::ifstream(candidate)) config_path = candidate;
  }
  if (!config_path.empty() &&
      !lint::LoadConfig(config_path, &config, &error)) {
    return Status::InvalidArgument(error);
  }

  std::vector<lint::Finding> findings;
  std::size_t files_scanned = 0;
  if (!lint::LintTree(root, config, &findings, &error, &files_scanned)) {
    return Status::IoError(error);
  }

  const std::string baseline_path =
      flags.GetString("baseline", root + "/" + config.baseline);

  if (flags.GetBool("write-baseline", false)) {
    std::ofstream baseline_out(baseline_path, std::ios::trunc);
    if (!baseline_out) {
      return Status::IoError("cannot write " + baseline_path);
    }
    baseline_out << lint::FormatBaseline(findings);
    out << "wrote " << findings.size() << " baseline entries to "
        << baseline_path << "\n";
    return Status::Ok();
  }

  std::vector<std::string> baseline_keys;
  if (!lint::LoadBaseline(baseline_path, &baseline_keys, &error)) {
    return Status::IoError(error);
  }
  lint::Report report = lint::ApplyBaseline(findings, baseline_keys);
  report.files_scanned = files_scanned;

  for (const lint::Finding& finding : report.fresh) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << "] " << finding.message << "\n    " << finding.snippet << "\n";
  }
  for (const std::string& key : report.stale) {
    out << "stale baseline entry: " << key << "\n";
  }
  out << lint::FormatTable(report);

  const std::string summary_md = flags.GetString("summary-md", "");
  if (!summary_md.empty()) {
    std::ofstream summary(summary_md, std::ios::app);
    if (!summary) return Status::IoError("cannot write " + summary_md);
    summary << lint::FormatMarkdownTable(report);
  }

  if (!report.fresh.empty() || !report.stale.empty()) {
    return Status::FailedPrecondition(
        "lint: " + std::to_string(report.fresh.size()) +
        " fresh finding(s), " + std::to_string(report.stale.size()) +
        " stale baseline entr(y/ies)");
  }
  return Status::Ok();
}

int Main(int argc, const char* const* argv, std::istream& in,
         std::ostream& out, std::ostream& err) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = flags.positional()[0];
  Status status = Status::InvalidArgument("unknown command: " + command);
  if (command == "generate") {
    status = RunGenerate(flags, out);
  } else if (command == "release-universal") {
    status = RunReleaseUniversal(flags, out);
  } else if (command == "release-sorted") {
    status = RunReleaseSorted(flags, out);
  } else if (command == "query") {
    status = RunQuery(flags, out);
  } else if (command == "serve") {
    status = RunServe(flags, in, out);
  } else if (command == "client") {
    status = RunClient(flags, in, out);
  } else if (command == "plan") {
    status = RunPlan(flags, out);
  } else if (command == "recover") {
    status = RunRecover(flags, out);
  } else if (command == "lint") {
    status = RunLint(flags, out);
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    if (status.code() == StatusCode::kInvalidArgument) err << kUsage;
    return 1;
  }
  return 0;
}

int Main(int argc, const char* const* argv, std::ostream& out,
         std::ostream& err) {
  return Main(argc, argv, std::cin, out, err);
}

}  // namespace dphist::cli
