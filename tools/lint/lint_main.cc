// dphist_lint command-line driver. See tools/lint/lint.h for the rules.
//
// Usage:
//   dphist_lint [--root DIR] [--config FILE] [--baseline FILE]
//               [--write-baseline] [--summary-md FILE] [--list-rules]
//   dphist_lint --file PATH --as REL_PATH   (single file, no baseline;
//               REL_PATH selects which rules apply — CI uses this to
//               prove every must-fail fixture still fails)
//
// Exit status: 0 when the tree is clean modulo the baseline and the
// baseline has no stale entries; 1 on findings or stale entries; 2 on
// usage or I/O errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--baseline FILE]\n"
               "       [--write-baseline] [--summary-md FILE] "
               "[--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string baseline_override;
  std::string summary_md;
  std::string single_file;
  std::string as_path;
  bool write_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--config") {
      config_path = value("--config");
    } else if (arg == "--baseline") {
      baseline_override = value("--baseline");
    } else if (arg == "--summary-md") {
      summary_md = value("--summary-md");
    } else if (arg == "--file") {
      single_file = value("--file");
    } else if (arg == "--as") {
      as_path = value("--as");
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : dphist::lint::RuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else {
      return Usage(argv[0]);
    }
  }

  dphist::lint::Config config;
  std::string error;
  if (config_path.empty()) {
    // Pick up the checked-in config when running from the repo root.
    const std::string default_config = root + "/tools/lint/dphist_lint.conf";
    if (std::ifstream(default_config)) config_path = default_config;
  }
  if (!config_path.empty() &&
      !dphist::lint::LoadConfig(config_path, &config, &error)) {
    std::cerr << "dphist_lint: " << error << "\n";
    return 2;
  }

  if (!single_file.empty()) {
    std::ifstream in(single_file, std::ios::binary);
    if (!in) {
      std::cerr << "dphist_lint: cannot read " << single_file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = as_path.empty() ? single_file : as_path;
    const std::vector<dphist::lint::Finding> findings =
        dphist::lint::LintSource(rel, buffer.str(), config);
    for (const dphist::lint::Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n    " << f.snippet << "\n";
    }
    std::cout << findings.size() << " finding(s)\n";
    return findings.empty() ? 0 : 1;
  }

  std::vector<dphist::lint::Finding> findings;
  std::size_t files_scanned = 0;
  if (!dphist::lint::LintTree(root, config, &findings, &error,
                              &files_scanned)) {
    std::cerr << "dphist_lint: " << error << "\n";
    return 2;
  }

  const std::string baseline_path =
      baseline_override.empty() ? root + "/" + config.baseline
                                : baseline_override;

  if (write_baseline) {
    std::ofstream out(baseline_path, std::ios::trunc);
    if (!out) {
      std::cerr << "dphist_lint: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << dphist::lint::FormatBaseline(findings);
    std::cout << "wrote " << findings.size() << " baseline entries to "
              << baseline_path << "\n";
    return 0;
  }

  std::vector<std::string> baseline_keys;
  if (!dphist::lint::LoadBaseline(baseline_path, &baseline_keys, &error)) {
    std::cerr << "dphist_lint: " << error << "\n";
    return 2;
  }

  dphist::lint::Report report =
      dphist::lint::ApplyBaseline(findings, baseline_keys);
  report.files_scanned = files_scanned;

  for (const dphist::lint::Finding& f : report.fresh) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n    " << f.snippet << "\n";
  }
  for (const std::string& key : report.stale) {
    std::cout << "stale baseline entry (debt already paid — remove it, or "
                 "re-run with --write-baseline): "
              << key << "\n";
  }
  std::cout << dphist::lint::FormatTable(report);

  if (!summary_md.empty()) {
    std::ofstream out(summary_md, std::ios::app);
    if (!out) {
      std::cerr << "dphist_lint: cannot write " << summary_md << "\n";
      return 2;
    }
    out << dphist::lint::FormatMarkdownTable(report);
  }

  return report.fresh.empty() && report.stale.empty() ? 0 : 1;
}
