// dphist_lint: repo-specific invariant checker.
//
// A deliberately small token/line-level linter (no libclang, no build
// dependency) that enforces the contracts this codebase promises but a
// compiler cannot check by itself:
//
//   serving-check   DPHIST_CHECK / DPHIST_DCHECK / abort() are banned in
//                   the serving directories (src/service, src/runtime,
//                   src/engine, src/storage): a malformed request must
//                   surface as a Status, never kill the server.
//   hot-alloc       naked new / malloc / container growth (push_back,
//                   resize, reserve, ...) are banned in declared hot
//                   files (src/engine/kernels.cc by default): the batch
//                   kernels are contractually allocation-free.
//   mutex-guard     raw std::mutex is banned outside common/mutex.h
//                   (it cannot carry capability annotations), and every
//                   dphist::Mutex member declaration must have at least
//                   one DPHIST_GUARDED_BY(name) sibling in the same
//                   file — an unguarded mutex guards nothing.
//   factory-status  every `static ... Create*(...)` factory must return
//                   Status or Result<T>; fallible construction must not
//                   lose its error.
//   tsa-optout      DPHIST_NO_THREAD_SAFETY_ANALYSIS is banned in the
//                   serving directories; use a documented
//                   DPHIST_ASSERT_CAPABILITY escape instead.
//
// Suppression: a line (or the line directly above it) containing
// `dphist-lint: allow(<rule>)` exempts that line from <rule>, for cases
// the checker's approximations cannot see (e.g. a function-local mutex,
// which GUARDED_BY cannot apply to).
//
// Baseline ratchet: pre-existing findings live in a checked-in baseline
// file, keyed by (rule, file, normalized line text) so they survive
// line-number drift. A finding in the baseline is suppressed; a finding
// not in the baseline fails the run; a baseline entry that no longer
// matches anything is *stale* and also fails the run — debt may only
// shrink. Regenerate with `dphist_lint --write-baseline` after paying
// debt down.

#ifndef DPHIST_TOOLS_LINT_LINT_H_
#define DPHIST_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace dphist {
namespace lint {

/// Identifiers of every rule, in report order.
std::vector<std::string> RuleNames();

/// One rule violation at a specific line.
struct Finding {
  std::string rule;
  std::string file;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string snippet;  // trimmed source line
  std::string message;

  /// Baseline key: line-number independent so the ratchet survives
  /// unrelated edits above the finding.
  std::string Key() const { return rule + "|" + file + "|" + snippet; }
};

/// What the checker enforces and where. Defaults match the repo layout;
/// a config file can override any list.
struct Config {
  /// Directory prefixes (repo-relative, trailing slash) where
  /// serving-check and tsa-optout apply.
  std::vector<std::string> serving_dirs = {
      "src/service/", "src/runtime/", "src/engine/", "src/storage/"};
  /// Files (repo-relative) where hot-alloc applies.
  std::vector<std::string> hot_files = {"src/engine/kernels.cc"};
  /// Baseline file path, repo-relative.
  std::string baseline = "tools/lint/lint_baseline.txt";
};

/// Parses a config file: `key = value` lines, `#` comments, commas
/// separating list items. Unknown keys are an error (typos must not
/// silently disable a rule). Returns false and fills *error on failure.
bool LoadConfig(const std::string& path, Config* config, std::string* error);

/// Runs every rule over one file's contents. `rel_path` selects which
/// rules apply (serving dir? hot file?).
std::vector<Finding> LintSource(const std::string& rel_path,
                                const std::string& content,
                                const Config& config);

/// Lints every .h/.cc under root/src, in sorted path order. Returns
/// false and fills *error if the tree cannot be read. `files_scanned`
/// (optional) receives the number of files visited.
bool LintTree(const std::string& root, const Config& config,
              std::vector<Finding>* findings, std::string* error,
              std::size_t* files_scanned = nullptr);

/// Result of subtracting the baseline from a finding list.
struct Report {
  std::vector<Finding> fresh;       // new findings: fail the run
  std::vector<Finding> suppressed;  // matched a baseline entry
  std::vector<std::string> stale;   // baseline keys matching nothing: fail
  /// files scanned, for the summary table
  std::size_t files_scanned = 0;
};

/// Loads baseline keys (one per line, `#` comments). A missing file is
/// an empty baseline (returns true).
bool LoadBaseline(const std::string& path, std::vector<std::string>* keys,
                  std::string* error);

/// Splits findings into fresh/suppressed against the baseline keys and
/// records which keys went stale. Each baseline line suppresses at most
/// one finding (multiplicity counts).
Report ApplyBaseline(const std::vector<Finding>& findings,
                     const std::vector<std::string>& baseline_keys);

/// Serializes findings as baseline lines (sorted, with a header).
std::string FormatBaseline(const std::vector<Finding>& findings);

/// Plain-text per-rule count table (fresh / suppressed columns).
std::string FormatTable(const Report& report);

/// GitHub-flavored markdown version of the same table, for CI job
/// summaries ($GITHUB_STEP_SUMMARY).
std::string FormatMarkdownTable(const Report& report);

}  // namespace lint
}  // namespace dphist

#endif  // DPHIST_TOOLS_LINT_LINT_H_
