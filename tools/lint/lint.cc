#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace dphist {
namespace lint {
namespace {

constexpr const char* kRules[] = {
    "serving-check", "hot-alloc", "mutex-guard", "factory-status",
    "tsa-optout",
};

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `word` occurs in `s` with non-word characters (or the
/// string edge) on both sides.
bool ContainsWord(const std::string& s, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !IsWordChar(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool InAnyDir(const std::string& rel_path,
              const std::vector<std::string>& dirs) {
  for (const std::string& dir : dirs) {
    if (HasPrefix(rel_path, dir)) return true;
  }
  return false;
}

bool IsListed(const std::string& rel_path,
              const std::vector<std::string>& files) {
  return std::find(files.begin(), files.end(), rel_path) != files.end();
}

/// Splits `content` into raw lines (no trailing newline).
std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Removes comments from each line: `//` tails and `/* ... */` regions
/// (tracked across lines). Token-level approximation — comment markers
/// inside string literals are treated as comments; no rule here matches
/// anything plausible inside a string, so the simplification is safe.
std::vector<std::string> StripComments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size()) {
        if (line[i + 1] == '/') break;  // rest of line is a comment
        if (line[i + 1] == '*') {
          in_block = true;
          ++i;
          continue;
        }
      }
      code += line[i];
    }
    out.push_back(code);
  }
  return out;
}

/// True when raw line `i` (or the line above it) carries a
/// `dphist-lint: allow(<rule>)` marker for this rule.
bool Allowed(const std::vector<std::string>& raw, std::size_t i,
             const std::string& rule) {
  const std::string marker = "dphist-lint: allow(" + rule + ")";
  if (Contains(raw[i], marker)) return true;
  return i > 0 && Contains(raw[i - 1], marker);
}

const std::regex& MutexDeclPattern() {
  // `Mutex name_;` member/variable declarations (optionally mutable
  // and/or namespace-qualified).
  static const std::regex re(
      R"(^\s*(?:mutable\s+)?(?:dphist::)?Mutex\s+([A-Za-z_]\w*)\s*;)");
  return re;
}

const std::regex& FactoryPattern() {
  // `static <return-type> Create*(` — return type captured between.
  static const std::regex re(R"(\bstatic\b(.*?)\b(Create\w*)\s*\()");
  return re;
}

}  // namespace

std::vector<std::string> RuleNames() {
  return std::vector<std::string>(std::begin(kRules), std::end(kRules));
}

std::vector<Finding> LintSource(const std::string& rel_path,
                                const std::string& content,
                                const Config& config) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> code = StripComments(raw);
  const bool serving = InAnyDir(rel_path, config.serving_dirs);
  const bool hot = IsListed(rel_path, config.hot_files);
  // The annotation machinery itself is the one place raw std::mutex
  // legitimately appears.
  const bool mutex_exempt = rel_path == "src/common/mutex.h" ||
                            rel_path == "src/common/thread_annotations.h";

  auto add = [&](std::size_t i, const char* rule, std::string message) {
    if (Allowed(raw, i, rule)) return;
    Finding f;
    f.rule = rule;
    f.file = rel_path;
    f.line = static_cast<int>(i) + 1;
    f.snippet = Trim(code[i]);
    f.message = std::move(message);
    findings.push_back(std::move(f));
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (Trim(line).empty()) continue;

    if (serving) {
      if (Contains(line, "DPHIST_CHECK") || Contains(line, "DPHIST_DCHECK")) {
        add(i, "serving-check",
            "assertion on a serving path: return a Status instead of "
            "aborting the server");
      } else if (ContainsWord(line, "abort")) {
        add(i, "serving-check",
            "abort() on a serving path: return a Status instead of "
            "killing the server");
      }
      if (Contains(line, "DPHIST_NO_THREAD_SAFETY_ANALYSIS")) {
        add(i, "tsa-optout",
            "thread-safety analysis opt-out on a serving path: use a "
            "documented DPHIST_ASSERT_CAPABILITY escape instead");
      }
    }

    if (hot) {
      static const char* kGrowthCalls[] = {
          "push_back", "emplace_back", "resize", "reserve", "insert",
          "emplace",
      };
      if (ContainsWord(line, "new")) {
        add(i, "hot-alloc", "naked new in an allocation-free hot file");
      } else if (ContainsWord(line, "malloc") || ContainsWord(line, "calloc") ||
                 ContainsWord(line, "realloc")) {
        add(i, "hot-alloc", "malloc-family call in an allocation-free "
                            "hot file");
      } else {
        for (const char* call : kGrowthCalls) {
          if (ContainsWord(line, call) && Contains(line, "(")) {
            add(i, "hot-alloc",
                std::string("container growth (") + call +
                    ") in an allocation-free hot file");
            break;
          }
        }
      }
    }

    if (!mutex_exempt) {
      if (Contains(line, "std::mutex")) {
        add(i, "mutex-guard",
            "raw std::mutex cannot carry capability annotations: use "
            "dphist::Mutex (common/mutex.h)");
      }
      std::smatch m;
      if (std::regex_search(line, m, MutexDeclPattern())) {
        const std::string name = m[1].str();
        if (!Contains(content, "DPHIST_GUARDED_BY(" + name + ")")) {
          add(i, "mutex-guard",
              "mutex '" + name + "' has no DPHIST_GUARDED_BY(" + name +
                  ") sibling: an unguarded mutex guards nothing");
        }
      }
    }

    {
      std::smatch m;
      if (std::regex_search(line, m, FactoryPattern())) {
        const std::string return_type = m[1].str();
        if (!Contains(return_type, "Result<") &&
            !Contains(return_type, "Status")) {
          add(i, "factory-status",
              "factory '" + m[2].str() +
                  "' must return Status or Result<T> so construction "
                  "failure is not lost");
        }
      }
    }
  }
  return findings;
}

bool LintTree(const std::string& root, const Config& config,
              std::vector<Finding>* findings, std::string* error,
              std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    *error = "not a source tree (no src/ directory): " + root;
    return false;
  }
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      *error = "walking " + src.string() + ": " + ec.message();
      return false;
    }
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  if (files_scanned != nullptr) *files_scanned = files.size();
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      *error = "cannot read " + path.string();
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(path, fs::path(root), ec).generic_string();
    std::vector<Finding> file_findings =
        LintSource(ec ? path.generic_string() : rel, buffer.str(), config);
    findings->insert(findings->end(),
                     std::make_move_iterator(file_findings.begin()),
                     std::make_move_iterator(file_findings.end()));
  }
  return true;
}

bool LoadConfig(const std::string& path, Config* config,
                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read config: " + path;
    return false;
  }
  auto parse_list = [](const std::string& value) {
    std::vector<std::string> items;
    std::string item;
    std::istringstream stream(value);
    while (std::getline(stream, item, ',')) {
      item = Trim(item);
      if (!item.empty()) items.push_back(item);
    }
    return items;
  };
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = path + ":" + std::to_string(line_no) +
               ": expected `key = value`";
      return false;
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key == "serving_dirs") {
      config->serving_dirs = parse_list(value);
    } else if (key == "hot_files") {
      config->hot_files = parse_list(value);
    } else if (key == "baseline") {
      config->baseline = value;
    } else {
      // A typo must not silently disable a rule.
      *error = path + ":" + std::to_string(line_no) + ": unknown key '" +
               key + "'";
      return false;
    }
  }
  return true;
}

bool LoadBaseline(const std::string& path, std::vector<std::string>* keys,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) return true;  // missing baseline == empty baseline
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys->push_back(line);
  }
  (void)error;
  return true;
}

Report ApplyBaseline(const std::vector<Finding>& findings,
                     const std::vector<std::string>& baseline_keys) {
  Report report;
  // Multiset semantics: each baseline line absorbs one finding.
  std::map<std::string, int> remaining;
  for (const std::string& key : baseline_keys) ++remaining[key];
  for (const Finding& finding : findings) {
    auto it = remaining.find(finding.Key());
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      report.suppressed.push_back(finding);
    } else {
      report.fresh.push_back(finding);
    }
  }
  for (const auto& [key, count] : remaining) {
    for (int i = 0; i < count; ++i) report.stale.push_back(key);
  }
  return report;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& finding : findings) keys.push_back(finding.Key());
  std::sort(keys.begin(), keys.end());
  std::ostringstream out;
  out << "# dphist_lint baseline: pre-existing findings, keyed\n"
         "# rule|file|line-text (line-number independent). This file may\n"
         "# only shrink; regenerate with `dphist_lint --write-baseline`\n"
         "# after paying debt down.\n";
  for (const std::string& key : keys) out << key << "\n";
  return out.str();
}

namespace {

struct RuleCounts {
  std::size_t fresh = 0;
  std::size_t suppressed = 0;
};

std::map<std::string, RuleCounts> CountByRule(const Report& report) {
  std::map<std::string, RuleCounts> counts;
  for (const std::string& rule : RuleNames()) counts[rule];  // stable rows
  for (const Finding& f : report.fresh) ++counts[f.rule].fresh;
  for (const Finding& f : report.suppressed) ++counts[f.rule].suppressed;
  return counts;
}

}  // namespace

std::string FormatTable(const Report& report) {
  std::ostringstream out;
  out << "rule             fresh  baselined\n";
  for (const auto& [rule, counts] : CountByRule(report)) {
    out << rule << std::string(rule.size() < 17 ? 17 - rule.size() : 1, ' ')
        << counts.fresh << "      " << counts.suppressed << "\n";
  }
  out << "files scanned: " << report.files_scanned
      << ", stale baseline entries: " << report.stale.size() << "\n";
  return out.str();
}

std::string FormatMarkdownTable(const Report& report) {
  std::ostringstream out;
  out << "### dphist_lint\n\n"
         "| rule | fresh | baselined |\n"
         "| --- | ---: | ---: |\n";
  for (const auto& [rule, counts] : CountByRule(report)) {
    out << "| `" << rule << "` | " << counts.fresh << " | "
        << counts.suppressed << " |\n";
  }
  out << "\nFiles scanned: " << report.files_scanned
      << " &middot; stale baseline entries: " << report.stale.size()
      << "\n";
  return out.str();
}

}  // namespace lint
}  // namespace dphist
