// Implementations behind the dphist command-line tool. Kept as a library
// so every command is unit-testable; tools/dphist_cli.cc is a thin main.
//
// Commands:
//   generate          synthesize a dataset to CSV
//   release-universal publish an epsilon-DP universal histogram (H-bar)
//   release-sorted    publish an epsilon-DP unattributed histogram (S-bar)
//   query             answer a range count from a published histogram
//   serve             long-lived serving runtime (src/runtime/): publish
//                     a QueryService snapshot and answer a workload file
//                     concurrently, or --stdin for a streaming REPL;
//                     --strategy auto lets the planner pick and
//                     --replan-every/--replan-drift let the EpochManager
//                     republish as observed traffic shifts
//   plan              cost every (strategy, shards) candidate against a
//                     workload and print the variance-minimizing plan
//                     (src/planner/)

#ifndef DPHIST_TOOLS_CLI_COMMANDS_H_
#define DPHIST_TOOLS_CLI_COMMANDS_H_

#include <iosfwd>

#include "common/flags.h"
#include "common/status.h"

namespace dphist::cli {

/// `generate --dataset nettrace|social|searchlogs --output PATH
///  [--size N] [--seed S]`
Status RunGenerate(const Flags& flags, std::ostream& out);

/// `release-universal --input PATH --output PATH --epsilon E
///  [--branching K] [--no-prune] [--no-round] [--seed S]`
/// Writes the H-bar per-position estimates as a histogram CSV.
Status RunReleaseUniversal(const Flags& flags, std::ostream& out);

/// `release-sorted --input PATH --output PATH --epsilon E [--seed S]`
/// Writes the S-bar estimate of the sorted (unattributed) histogram.
Status RunReleaseSorted(const Flags& flags, std::ostream& out);

/// `query --release PATH --lo X --hi Y`
/// Sums the published per-position estimates over [lo, hi].
Status RunQuery(const Flags& flags, std::ostream& out);

/// `serve --input PATH --epsilon E (--queries PATH | --stdin)
///  [--strategy hbar|htilde|ltilde|wavelet|auto] [--branching K]
///  [--shards S] [--cache N] [--threads T] [--build-threads B] [--seed S]
///  [--no-round] [--no-prune] [--max-shards M] [--strategies a,b,c]
///  [--objective mean|worst] [--max-analyzer-width W]
///  [--replan-every N] [--replan-drift X] [--drift-check-every N]
///  [--replan-sync] [--reservoir N] [--epsilon-budget B]`
/// The serving runtime. With --queries it publishes one snapshot and
/// answers the session script (one answer per line, input order, T
/// worker threads) followed by a `# served ...` stats line — the classic
/// batch mode, now a thin driver over src/runtime/. With --stdin it
/// serves a streaming session from standard input (`q lo hi`,
/// `qb k ...`, `stats`, `replan`, `quit` — see runtime/session.h).
/// Either way the EpochManager can republish mid-session: every N
/// observed queries, on predicted-MSE drift, or on the `replan` command
/// — each republish spends a fresh epsilon and is announced as a
/// `# planned strategy=...` line.
Status RunServe(const Flags& flags, std::istream& in, std::ostream& out);

/// `client --port P [--host A] [--auth-token T] [--binary]
///  [--queries PATH]`
/// Drives one session against a `serve --listen` server and prints the
/// transcript. Commands come from --queries or stdin (same grammar as
/// the REPL); a missing `quit` is appended. --binary negotiates the
/// length-prefixed frame protocol, pipelines every request in one
/// flush, and renders replies/pushes as the text transcript lines a
/// plain session would have produced — so the two protocols' outputs
/// can be diffed directly.
Status RunClient(const Flags& flags, std::istream& in, std::ostream& out);

/// `plan --queries PATH --epsilon E (--input PATH | --domain N)
///  [--branching K] [--max-shards M] [--strategies a,b,c]
///  [--objective mean|worst] [--max-analyzer-width W]`
/// Costs every candidate (strategy, shard count) against the workload
/// file's length profile and prints the full evaluation table plus the
/// chosen plan. Purely analytical: reads no private data beyond the
/// domain size, draws no noise.
Status RunPlan(const Flags& flags, std::ostream& out);

/// `lint [--root DIR] [--config FILE] [--baseline FILE]
///  [--write-baseline] [--summary-md FILE]`
/// Runs the repo invariant checker (tools/lint/) over root/src and
/// prints fresh findings plus the per-rule count table. Fails
/// (FailedPrecondition) on fresh findings or stale baseline entries —
/// the same ratchet the standalone dphist_lint binary enforces in CI.
Status RunLint(const Flags& flags, std::ostream& out);

/// `recover --state-dir DIR [--inspect]`
/// Offline replay of a `serve --state-dir` directory: refolds the WAL
/// ledger exactly as a restarting server would and reports the epsilon
/// total, last swapped epoch, torn-tail flag, and the persisted
/// snapshot's identity. --inspect additionally lists every spend record.
/// Reads no private data and mutates nothing beyond truncating a torn
/// WAL tail (the same repair a restart performs).
Status RunRecover(const Flags& flags, std::ostream& out);

/// Dispatches on the first positional argument; prints usage on error.
/// Returns a process exit code. `in` feeds `serve --stdin`.
int Main(int argc, const char* const* argv, std::istream& in,
         std::ostream& out, std::ostream& err);

/// Convenience overload reading from std::cin.
int Main(int argc, const char* const* argv, std::ostream& out,
         std::ostream& err);

}  // namespace dphist::cli

#endif  // DPHIST_TOOLS_CLI_COMMANDS_H_
