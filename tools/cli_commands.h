// Implementations behind the dphist command-line tool. Kept as a library
// so every command is unit-testable; tools/dphist_cli.cc is a thin main.
//
// Commands:
//   generate          synthesize a dataset to CSV
//   release-universal publish an epsilon-DP universal histogram (H-bar)
//   release-sorted    publish an epsilon-DP unattributed histogram (S-bar)
//   query             answer a range count from a published histogram
//   serve             publish a QueryService snapshot and answer a whole
//                     range workload concurrently (src/service/);
//                     --strategy auto lets the planner pick
//   plan              cost every (strategy, shards) candidate against a
//                     workload and print the variance-minimizing plan
//                     (src/planner/)

#ifndef DPHIST_TOOLS_CLI_COMMANDS_H_
#define DPHIST_TOOLS_CLI_COMMANDS_H_

#include <ostream>

#include "common/flags.h"
#include "common/status.h"

namespace dphist::cli {

/// `generate --dataset nettrace|social|searchlogs --output PATH
///  [--size N] [--seed S]`
Status RunGenerate(const Flags& flags, std::ostream& out);

/// `release-universal --input PATH --output PATH --epsilon E
///  [--branching K] [--no-prune] [--no-round] [--seed S]`
/// Writes the H-bar per-position estimates as a histogram CSV.
Status RunReleaseUniversal(const Flags& flags, std::ostream& out);

/// `release-sorted --input PATH --output PATH --epsilon E [--seed S]`
/// Writes the S-bar estimate of the sorted (unattributed) histogram.
Status RunReleaseSorted(const Flags& flags, std::ostream& out);

/// `query --release PATH --lo X --hi Y`
/// Sums the published per-position estimates over [lo, hi].
Status RunQuery(const Flags& flags, std::ostream& out);

/// `serve --input PATH --queries PATH --epsilon E
///  [--strategy hbar|htilde|ltilde|wavelet|auto] [--branching K]
///  [--shards S] [--cache N] [--threads T] [--build-threads B] [--seed S]
///  [--no-round] [--no-prune] [--max-shards M] [--strategies a,b,c]
///  [--objective mean|worst] [--max-analyzer-width W]`
/// Publishes one snapshot of the input histogram, answers every "lo hi"
/// line of the query file through the shared-cache QueryService with T
/// worker threads, and writes one answer per line (input order) followed
/// by a `# served ...` stats comment line. With --strategy auto the
/// cost-based planner picks the (strategy, shards) pair that minimizes
/// the workload's expected squared error; the stats line reports the
/// resolved choice.
Status RunServe(const Flags& flags, std::ostream& out);

/// `plan --queries PATH --epsilon E (--input PATH | --domain N)
///  [--branching K] [--max-shards M] [--strategies a,b,c]
///  [--objective mean|worst] [--max-analyzer-width W]`
/// Costs every candidate (strategy, shard count) against the workload
/// file's length profile and prints the full evaluation table plus the
/// chosen plan. Purely analytical: reads no private data beyond the
/// domain size, draws no noise.
Status RunPlan(const Flags& flags, std::ostream& out);

/// Dispatches on the first positional argument; prints usage on error.
/// Returns a process exit code.
int Main(int argc, const char* const* argv, std::ostream& out,
         std::ostream& err);

}  // namespace dphist::cli

#endif  // DPHIST_TOOLS_CLI_COMMANDS_H_
