// dphist command-line tool: synthesize data, publish differentially
// private histogram releases, and query them. See --help / usage output.

#include <iostream>

#include "tools/cli_commands.h"

int main(int argc, char** argv) {
  return dphist::cli::Main(argc, argv, std::cout, std::cerr);
}
