#!/usr/bin/env bash
# Builds the benchmark suite in Release mode, runs bench_micro_range_query,
# and writes BENCH_range_query.json at the repo root so the query-path
# performance trajectory is tracked from PR to PR.
#
# Usage: tools/run_bench.sh [extra bench flags...]
#   e.g. tools/run_bench.sh --max-log2=16 --min-time-ms=100

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-release"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release \
  -DDPHIST_BUILD_BENCH=ON >/dev/null
cmake --build "${BUILD_DIR}" --target bench_micro_range_query -j >/dev/null

OUT="${REPO_ROOT}/BENCH_range_query.json"
"${BUILD_DIR}/bench_micro_range_query" "$@" > "${OUT}"

echo "wrote ${OUT}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
s = data["summary"]
print(f"H-bar prefix path at max domain: {s['hbar_prefix_qps_at_max_domain']:.3g} q/s "
      f"({s['hbar_prefix_speedup_at_max_domain']:.1f}x over decomposition)")
EOF
fi
