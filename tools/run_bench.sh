#!/usr/bin/env bash
# Builds the benchmark suite in Release mode, runs
# bench_micro_range_query, bench_answer_kernel,
# bench_service_throughput, bench_snapshot_build, bench_streaming_serve,
# bench_socket_serve, bench_plan_sweep, and bench_recovery_restart, and
# writes BENCH_range_query.json, BENCH_answer_kernel.json,
# BENCH_service.json, BENCH_snapshot_build.json, BENCH_streaming.json,
# BENCH_socket.json, BENCH_plan.json, and BENCH_recovery.json at the
# repo root so the query-path, SIMD answer-engine, serving-layer,
# publish-latency, online-replan, network-transport, planner, and
# crash-recovery performance trajectories are tracked from PR to PR.
#
# Usage: tools/run_bench.sh [extra micro_range_query flags...]
#   e.g. tools/run_bench.sh --max-log2=16 --min-time-ms=100
# The service bench is configured through DPHIST_* env vars
# (DPHIST_DOMAIN_LOG2, DPHIST_PHASES, DPHIST_THREADS_LIST, ...).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-release"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release \
  -DDPHIST_BUILD_BENCH=ON >/dev/null
cmake --build "${BUILD_DIR}" \
  --target bench_micro_range_query bench_answer_kernel \
  bench_service_throughput \
  bench_snapshot_build bench_streaming_serve bench_socket_serve \
  bench_plan_sweep bench_recovery_restart \
  -j >/dev/null

OUT="${REPO_ROOT}/BENCH_range_query.json"
"${BUILD_DIR}/bench_micro_range_query" "$@" > "${OUT}"

KERNEL_OUT="${REPO_ROOT}/BENCH_answer_kernel.json"
"${BUILD_DIR}/bench_answer_kernel" > "${KERNEL_OUT}"

SERVICE_OUT="${REPO_ROOT}/BENCH_service.json"
"${BUILD_DIR}/bench_service_throughput" > "${SERVICE_OUT}"

SNAPSHOT_OUT="${REPO_ROOT}/BENCH_snapshot_build.json"
"${BUILD_DIR}/bench_snapshot_build" > "${SNAPSHOT_OUT}"

STREAMING_OUT="${REPO_ROOT}/BENCH_streaming.json"
"${BUILD_DIR}/bench_streaming_serve" > "${STREAMING_OUT}"

SOCKET_OUT="${REPO_ROOT}/BENCH_socket.json"
"${BUILD_DIR}/bench_socket_serve" > "${SOCKET_OUT}"

PLAN_OUT="${REPO_ROOT}/BENCH_plan.json"
"${BUILD_DIR}/bench_plan_sweep" > "${PLAN_OUT}"

RECOVERY_OUT="${REPO_ROOT}/BENCH_recovery.json"
"${BUILD_DIR}/bench_recovery_restart" > "${RECOVERY_OUT}"

echo "wrote ${OUT}"
echo "wrote ${KERNEL_OUT}"
echo "wrote ${SERVICE_OUT}"
echo "wrote ${SNAPSHOT_OUT}"
echo "wrote ${STREAMING_OUT}"
echo "wrote ${SOCKET_OUT}"
echo "wrote ${PLAN_OUT}"
echo "wrote ${RECOVERY_OUT}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" "$SERVICE_OUT" "$SNAPSHOT_OUT" "$STREAMING_OUT" "$SOCKET_OUT" "$PLAN_OUT" "$RECOVERY_OUT" "$KERNEL_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
s = data["summary"]
print(f"H-bar prefix path at max domain: {s['hbar_prefix_qps_at_max_domain']:.3g} q/s "
      f"({s['hbar_prefix_speedup_at_max_domain']:.1f}x over decomposition)")
with open(sys.argv[8]) as f:
    kernel = json.load(f)
s = kernel["summary"]
print(f"Answer engine ({kernel['active_kernel']}) at qb-4096: "
      f"{s['engine_ns_per_query_at_qb4096']:.3g} ns/query "
      f"({s['engine_speedup_at_qb4096']:.1f}x over per-query walker; "
      f"bit_identical={kernel['bit_identical']})")
with open(sys.argv[2]) as f:
    service = json.load(f)
s = service["summary"]
print(f"QueryService cached aggregate at {s['max_threads']} threads: "
      f"{s['cached_qps_at_max_threads']:.3g} q/s "
      f"({s['cached_speedup_max_over_min']:.1f}x over {s['min_threads']})")
with open(sys.argv[3]) as f:
    snapshot = json.load(f)
s = snapshot["summary"]
print(f"Snapshot build at {s['max_threads']} threads: "
      f"{s['build_seconds_max_threads']:.3g} s "
      f"({s['speedup_max_over_min']:.1f}x over {s['min_threads']}; "
      f"bit_identical={snapshot['bit_identical']})")
with open(sys.argv[4]) as f:
    streaming = json.load(f)
s = streaming["summary"]
print(f"Streaming serve: {s['steady_state_qps']:.3g} q/s steady, "
      f"replan pause {s['replan_pause_seconds']*1e3:.3g} ms "
      f"(build {s['mean_replan_build_seconds']*1e3:.3g} ms, "
      f"{streaming['hardware_concurrency']} core(s))")
with open(sys.argv[5]) as f:
    socket_bench = json.load(f)
s = socket_bench["summary"]
print(f"Socket serve: {s['qps_at_min_connections']:.3g} q/s aggregate at "
      f"{s['min_connections']} connection(s), "
      f"{s['qps_at_max_connections']:.3g} at {s['max_connections']} "
      f"({s['scaling_max_over_min']:.2f}x; "
      f"{socket_bench['hardware_concurrency']} core(s))")
with open(sys.argv[6]) as f:
    plan = json.load(f)
s = plan["summary"]
print(f"Plan sweep at n=2^{s['max_domain_log2']}: "
      f"{s['plan_seconds_at_max_domain']*1e3:.3g} ms cold, "
      f"{s['warm_replan_seconds_at_max_domain']*1e3:.3g} ms warm replan, "
      f"{s['infeasible_rows']} infeasible row(s); dense oracle at "
      f"n=2^{s['dense_domain_log2']} is {s['dense_over_recurrence']:.0f}x "
      f"slower")
with open(sys.argv[7]) as f:
    recovery = json.load(f)
s = recovery["summary"]
print(f"Recovery at n={s['max_domain']}: warm restart "
      f"{s['recover_seconds_at_max_domain']*1e3:.3g} ms "
      f"({s['recover_vs_rebuild_ratio']:.2f}x a rebuild; durable publish "
      f"{s['durability_overhead_ratio']:.2f}x volatile; "
      f"bit_identical={recovery['bit_identical']})")
EOF
fi
